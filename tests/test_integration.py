"""Integration tests spanning the compiler, simulator, energy models and baselines.

These tests check cross-module invariants that no single unit test sees:
conservation between the tiling plans and the simulator's traffic, the
monotonicity of performance/energy in bitwidth, bandwidth and batch size,
and end-to-end consistency of the public API paths.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.accelerator import BitFusionAccelerator
from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import ConvLayer, FCLayer
from repro.dnn.network import Network
from repro.isa.compiler import FusionCompiler
from repro.sim.executor import BitFusionSimulator


class TestTrafficConservation:
    def test_simulated_dram_traffic_matches_tiling_plans(self, default_config):
        """The simulator charges exactly the off-chip traffic the compiler planned."""
        network = models.load("VGG-7")
        compiler = FusionCompiler(default_config)
        program = compiler.compile(network)
        simulator = BitFusionSimulator(default_config)
        result = simulator.run_program(program)
        for compiled, layer_result in zip(program, result.layers):
            expected = compiled.tiling.total_dram_bits
            assert layer_result.traffic.dram_total_bits == expected

    def test_dram_traffic_at_least_model_footprint(self, default_config):
        """Off-chip reads can never be less than one fetch of the model weights."""
        for name in ("Cifar-10", "LSTM"):
            network = models.load(name)
            result = BitFusionSimulator(default_config).run_network(network)
            weight_bits = sum(layer.weight_bits_total() for layer in network)
            assert result.traffic.dram_read_bits >= weight_bits

    def test_buffer_traffic_exceeds_dram_traffic_for_compute_heavy_nets(self, default_config):
        """On-chip reuse means the buffers see far more traffic than DRAM."""
        result = BitFusionSimulator(default_config).run_network(models.load("Cifar-10"))
        assert result.traffic.buffer_total_bits > result.traffic.dram_total_bits


class TestMonotonicity:
    def _single_layer_network(self, bits: int) -> Network:
        return Network(
            f"fc{bits}",
            [FCLayer(name="fc", in_features=2048, out_features=2048,
                     input_bits=bits, weight_bits=bits, output_bits=bits)],
        )

    def test_latency_monotonic_in_bitwidth(self, default_config):
        simulator = BitFusionSimulator(default_config)
        latencies = [
            simulator.run_network(self._single_layer_network(bits)).total_cycles
            for bits in (2, 4, 8, 16)
        ]
        assert latencies == sorted(latencies)

    def test_energy_monotonic_in_bitwidth(self, default_config):
        simulator = BitFusionSimulator(default_config)
        energies = [
            simulator.run_network(self._single_layer_network(bits)).energy.total
            for bits in (2, 4, 8, 16)
        ]
        assert energies == sorted(energies)

    def test_latency_non_increasing_in_bandwidth(self):
        network = models.load("RNN")
        cycles = []
        for bandwidth in (32, 64, 128, 256, 512):
            config = BitFusionConfig.eyeriss_matched(bandwidth_bits_per_cycle=bandwidth)
            cycles.append(BitFusionSimulator(config).run_network(network).total_cycles)
        assert all(later <= earlier for earlier, later in zip(cycles, cycles[1:]))

    def test_per_inference_latency_non_increasing_in_batch(self):
        network = models.load("LSTM")
        latencies = []
        for batch in (1, 4, 16, 64):
            config = BitFusionConfig.eyeriss_matched(batch_size=batch)
            result = BitFusionSimulator(config).run_network(network, batch_size=batch)
            latencies.append(result.latency_per_inference_s)
        assert all(later <= earlier * 1.001 for earlier, later in zip(latencies, latencies[1:]))

    def test_more_fusion_units_never_slower(self):
        network = models.load("SVHN")
        small = BitFusionConfig(rows=16, columns=8, name="small")
        large = BitFusionConfig(rows=64, columns=16, name="large")
        small_cycles = BitFusionSimulator(small).run_network(network).total_cycles
        large_cycles = BitFusionSimulator(large).run_network(network).total_cycles
        assert large_cycles <= small_cycles


class TestCompilerSimulatorConsistency:
    def test_fusion_configuration_follows_layer_bitwidths(self, default_config):
        network = models.load("AlexNet")
        program = FusionCompiler(default_config).compile(network)
        for compiled in program:
            assert compiled.block.input_bits == compiled.layer.input_bits
            assert compiled.block.weight_bits == compiled.layer.weight_bits

    def test_macs_accounted_once_per_compute_layer(self, default_config):
        network = models.load("LeNet-5")
        result = BitFusionSimulator(default_config).run_network(network)
        expected = network.total_macs() * default_config.batch_size
        assert result.total_macs == expected

    def test_wider_model_takes_longer_on_same_hardware(self, default_config):
        simulator = BitFusionSimulator(default_config)
        wide = simulator.run_network(models.load("ResNet-18"))
        regular_net = models.load_baseline_variant("ResNet-18")
        # Execute the regular model at the wide model's bitwidths for a fair
        # hardware-only comparison.
        regular = simulator.run_network(
            Network(
                "ResNet-18-regular-2bit",
                [
                    replace(layer, input_bits=2, weight_bits=2, output_bits=2)
                    if layer.has_gemm()
                    else layer
                    for layer in regular_net
                ],
            )
        )
        assert wide.total_cycles > regular.total_cycles


class TestPublicApiPaths:
    def test_accelerator_and_simulator_agree(self, default_config):
        network = models.load("SVHN")
        via_accelerator = BitFusionAccelerator(default_config).run(network)
        via_simulator = BitFusionSimulator(default_config).run_network(network)
        assert via_accelerator.total_cycles == via_simulator.total_cycles
        assert via_accelerator.energy.total == pytest.approx(via_simulator.energy.total)

    def test_functional_and_performance_paths_share_configuration(self, rng):
        accelerator = BitFusionAccelerator(BitFusionConfig(rows=2, columns=2))
        layer = ConvLayer(name="c", in_channels=2, out_channels=3, in_height=5, in_width=5,
                          kernel=3, padding=1, input_bits=4, weight_bits=2)
        network = Network("tiny", [layer])
        result = accelerator.run(network)
        assert result.layer(layer.name).input_bits == 4

        from repro.dnn.reference import random_layer_data, run_conv_layer

        inputs, weights = random_layer_data(layer, rng)
        assert run_conv_layer(layer, inputs, weights, accelerator.config).matches

    def test_all_three_paper_configurations_run_all_benchmarks(self):
        configs = (
            BitFusionConfig.eyeriss_matched(),
            BitFusionConfig.stripes_matched(),
            BitFusionConfig.gpu_scaled_16nm(),
        )
        for config in configs:
            accelerator = BitFusionAccelerator(config)
            for name in ("LeNet-5", "LSTM"):
                result = accelerator.run(models.load(name))
                assert result.total_cycles > 0
                assert result.energy.total > 0
