"""The batched simulation executor against its scalar ``run_block`` oracle.

The contract under test: :func:`~repro.sim.batched.simulate_blocks_batched`
(and the 2-D :func:`~repro.sim.batched.simulate_blocks_grid`) produce
:class:`~repro.sim.results.LayerResult`\\ s *bit-identical* to looping
``BitFusionSimulator.run_block`` — every integer and every float64, field
for field.  Covered:

* every in-zoo network under several buffer/array geometries and both
  compiler flag settings (mirroring ``tests/test_vectorized_tiling.py``),
* 2-D config x block grids (the bandwidth-sweep fast path) and grids mixing
  batched rows with ``batched=False`` oracle rows,
* randomized FC (GEMM) and pooling blocks, edge tiles and mixed bitwidths
  (hypothesis),
* the overflow guard: blocks with MAC counts past the float64-exactness
  limit fall back to the scalar path and still agree,
* the multi-block entry points' routing (order, empty selections, the
  ``batched=False`` construction flag).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import FCLayer, PoolLayer
from repro.isa.compiler import FusionCompiler, compile_layer
from repro.isa.program import CompiledBlock
from repro.isa.tiling import GemmWorkload
from repro.sim.batched import _INT_LIMIT, simulate_blocks_batched, simulate_blocks_grid
from repro.sim.executor import BitFusionSimulator

_BASE = BitFusionConfig.eyeriss_matched(batch_size=16)

#: Geometries mirroring the tiling-oracle suite: the paper default plus
#: smaller and skewed scratchpads (multi-tile plans) and a different array.
_GEOMETRIES = (
    _BASE,
    _BASE.with_buffers(16.0, 32.0, 8.0),
    _BASE.with_buffers(4.0, 8.0, 2.0),
    _BASE.with_buffers(64.0, 16.0, 4.0).with_array(32, 16),
    BitFusionConfig.stripes_matched(batch_size=16),
)

_GEOMETRY_IDS = lambda c: f"{c.ibuf_kb:g}/{c.wbuf_kb:g}/{c.obuf_kb:g}KB"  # noqa: E731


def _assert_bit_identical(batched, scalar):
    """Field-for-field equality, floats compared through their exact values."""
    assert len(batched) == len(scalar)
    for got, want in zip(batched, scalar):
        assert got == want
        assert dataclasses.asdict(got) == dataclasses.asdict(want)


class TestZooOracle:
    @pytest.mark.parametrize("config", _GEOMETRIES, ids=_GEOMETRY_IDS)
    @pytest.mark.parametrize("network", models.BENCHMARKS)
    def test_zoo_blocks_bit_identical(self, network, config):
        program = FusionCompiler(config).compile(models.load(network), batch_size=16)
        batched = BitFusionSimulator(config).run_blocks(program)
        scalar = BitFusionSimulator(config, batched=False).run_blocks(program)
        _assert_bit_identical(batched, scalar)

    def test_compiler_flags_bit_identical(self):
        net = models.load("SVHN")
        for loop_ordering in (True, False):
            for layer_fusion in (True, False):
                program = FusionCompiler(
                    _BASE,
                    enable_loop_ordering=loop_ordering,
                    enable_layer_fusion=layer_fusion,
                ).compile(net, batch_size=16)
                batched = BitFusionSimulator(_BASE).run_blocks(program)
                scalar = BitFusionSimulator(_BASE, batched=False).run_blocks(program)
                _assert_bit_identical(batched, scalar)

    def test_zoo_blocks_stay_under_the_exactness_guard(self):
        # The guard must never kick in for realistic shapes — otherwise the
        # batched win silently evaporates into per-block fallbacks.
        for network in models.BENCHMARKS:
            program = FusionCompiler(_BASE).compile(models.load(network), batch_size=16)
            for block in program:
                workload = block.tiling.workload
                assert 64 * workload.macs < _INT_LIMIT
                tiling = block.tiling
                dram_total = int(
                    tiling.dram_weight_bits
                    + tiling.dram_input_bits
                    + tiling.dram_output_read_bits
                    + tiling.dram_output_write_bits
                )
                assert dram_total < _INT_LIMIT


class TestGridOracle:
    def test_grid_rows_match_scalar(self):
        program = FusionCompiler(_BASE).compile(models.load("CIFAR-10"), batch_size=16)
        configs = [
            _BASE,
            _BASE.with_bandwidth(128),
            _BASE.with_bandwidth(512),
            _BASE.with_buffers(16.0, 32.0, 8.0),
            _BASE.with_array(32, 16),
        ]
        simulators = [BitFusionSimulator(config) for config in configs]
        rows = simulate_blocks_grid(simulators, program.blocks)
        assert len(rows) == len(configs)
        for simulator, row in zip(simulators, rows):
            _assert_bit_identical(row, [simulator.run_block(b) for b in program])

    def test_grid_mixing_batched_and_oracle_rows(self):
        program = FusionCompiler(_BASE).compile(models.load("LeNet-5"), batch_size=16)
        batched_sim = BitFusionSimulator(_BASE)
        oracle_sim = BitFusionSimulator(_BASE.with_bandwidth(128), batched=False)
        rows = simulate_blocks_grid([batched_sim, oracle_sim], program.blocks)
        _assert_bit_identical(rows[0], [batched_sim.run_block(b) for b in program])
        _assert_bit_identical(rows[1], [oracle_sim.run_block(b) for b in program])

    def test_empty_block_batch(self):
        simulators = [BitFusionSimulator(_BASE), BitFusionSimulator(_BASE)]
        assert simulate_blocks_grid(simulators, []) == [[], []]
        assert simulate_blocks_batched(simulators[0], []) == []


class TestRouting:
    def test_selected_blocks_preserve_order(self):
        program = FusionCompiler(_BASE).compile(models.load("LeNet-5"), batch_size=16)
        simulator = BitFusionSimulator(_BASE)
        full = simulator.run_blocks(program)
        assert simulator.run_selected_blocks(program, [2, 0]) == [full[2], full[0]]
        assert simulator.run_selected_blocks(program, []) == []

    def test_oracle_flag_disables_batching_but_not_results(self):
        program = FusionCompiler(_BASE).compile(models.load("SVHN"), batch_size=16)
        oracle = BitFusionSimulator(_BASE, batched=False)
        assert not oracle.batched
        _assert_bit_identical(
            oracle.run_blocks(program),
            BitFusionSimulator(_BASE).run_blocks(program),
        )


class TestRandomizedOracle:
    @settings(max_examples=150, deadline=None)
    @given(
        in_features=st.integers(min_value=1, max_value=2048),
        out_features=st.integers(min_value=1, max_value=2048),
        batch=st.integers(min_value=1, max_value=64),
        input_bits=st.sampled_from((1, 2, 4, 8, 16)),
        weight_bits=st.sampled_from((1, 2, 4, 8, 16)),
        ibuf_kb=st.sampled_from((1.0, 4.0, 32.0)),
        wbuf_kb=st.sampled_from((2.0, 16.0, 64.0)),
        obuf_kb=st.sampled_from((0.5, 2.0, 16.0)),
    )
    def test_random_gemm_blocks_match_oracle(
        self, in_features, out_features, batch, input_bits, weight_bits, ibuf_kb, wbuf_kb, obuf_kb
    ):
        # Random FC shapes produce GEMMs with edge tiles (dims not divisible
        # by the chosen tile sizes) and mixed-bitwidth fusion configs.
        config = _BASE.with_buffers(ibuf_kb, wbuf_kb, obuf_kb)
        layer = FCLayer(
            name="fc",
            in_features=in_features,
            out_features=out_features,
            input_bits=input_bits,
            weight_bits=weight_bits,
        )
        try:
            block = compile_layer(layer, config, batch_size=batch)
        except ValueError:
            return  # no feasible tiling under a tiny scratchpad: nothing to simulate
        simulator = BitFusionSimulator(config)
        _assert_bit_identical(
            simulate_blocks_batched(simulator, [block]), [simulator.run_block(block)]
        )

    @settings(max_examples=60, deadline=None)
    @given(
        channels=st.integers(min_value=1, max_value=64),
        height=st.integers(min_value=2, max_value=32),
        kernel=st.integers(min_value=1, max_value=3),
        batch=st.integers(min_value=1, max_value=16),
        mode=st.sampled_from(("max", "avg")),
    )
    def test_random_pooling_blocks_match_oracle(self, channels, height, kernel, batch, mode):
        layer = PoolLayer(
            name="pool",
            channels=channels,
            in_height=height,
            in_width=height,
            kernel=min(kernel, height),
            stride=1,
            mode=mode,
        )
        block = compile_layer(layer, _BASE, batch_size=batch)
        simulator = BitFusionSimulator(_BASE)
        _assert_bit_identical(
            simulate_blocks_batched(simulator, [block]), [simulator.run_block(block)]
        )

    @settings(max_examples=40, deadline=None)
    @given(
        in_features=st.integers(min_value=1, max_value=512),
        out_features=st.integers(min_value=1, max_value=512),
        channels=st.integers(min_value=1, max_value=32),
        bits=st.sampled_from((2, 4, 8)),
    )
    def test_mixed_gemm_and_pooling_batch(self, in_features, out_features, channels, bits):
        fc = compile_layer(
            FCLayer(
                name="fc",
                in_features=in_features,
                out_features=out_features,
                input_bits=bits,
                weight_bits=bits,
            ),
            _BASE,
            batch_size=8,
        )
        pool = compile_layer(
            PoolLayer(name="pool", channels=channels, in_height=8, in_width=8),
            _BASE,
            batch_size=8,
        )
        simulator = BitFusionSimulator(_BASE)
        blocks = [fc, pool, fc]
        _assert_bit_identical(
            simulate_blocks_batched(simulator, blocks),
            [simulator.run_block(block) for block in blocks],
        )


class TestOverflowGuard:
    def _overflow_block(self) -> CompiledBlock:
        """A block whose MAC count breaks the float64-exactness argument."""
        base = compile_layer(
            FCLayer(name="fc", in_features=64, out_features=64), _BASE, batch_size=8
        )
        huge = GemmWorkload(
            m=1 << 20,
            n=1 << 20,
            r=1 << 18,
            input_bits=8,
            weight_bits=8,
            output_bits=16,
        )
        assert 64 * huge.macs >= _INT_LIMIT
        return CompiledBlock(
            block=base.block,
            layer=base.layer,
            tiling=dataclasses.replace(base.tiling, workload=huge),
            loop_order=base.loop_order,
        )

    def test_overflow_scale_macs_fall_back_to_scalar(self):
        block = self._overflow_block()
        normal = compile_layer(
            FCLayer(name="small", in_features=32, out_features=32), _BASE, batch_size=8
        )
        simulator = BitFusionSimulator(_BASE)
        # The guarded block must agree with the oracle (by delegating to it)
        # and must not poison its batchable neighbours.
        _assert_bit_identical(
            simulate_blocks_batched(simulator, [normal, block, normal]),
            [simulator.run_block(b) for b in (normal, block, normal)],
        )

    def test_overflow_fallback_covers_every_grid_row(self):
        block = self._overflow_block()
        simulators = [BitFusionSimulator(_BASE), BitFusionSimulator(_BASE.with_bandwidth(128))]
        rows = simulate_blocks_grid(simulators, [block])
        for simulator, row in zip(simulators, rows):
            _assert_bit_identical(row, [simulator.run_block(block)])
