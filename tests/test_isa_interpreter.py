"""Tests for the tile-level Fusion-ISA interpreter (Equation 4 semantics)."""

from __future__ import annotations

import pytest

from repro.core.config import BitFusionConfig
from repro.dnn.layers import ConvLayer, FCLayer
from repro.isa.block import InstructionBlock
from repro.isa.compiler import FusionCompiler
from repro.isa.instructions import (
    BlockEnd,
    GenAddr,
    LdMem,
    Loop,
    ScratchpadType,
    Setup,
    StMem,
)
from repro.isa.interpreter import interpret_block


@pytest.fixture
def tight_config() -> BitFusionConfig:
    """A configuration with small buffers so realistic layers need many tiles."""
    return BitFusionConfig(
        rows=8,
        columns=8,
        ibuf_kb=2.0,
        wbuf_kb=4.0,
        obuf_kb=1.0,
        dram_bandwidth_bits_per_cycle=64,
        batch_size=4,
        name="tight",
    )


class TestHandWrittenBlock:
    def _block(self) -> InstructionBlock:
        return InstructionBlock(
            "demo",
            [
                Setup(input_bits=4, weight_bits=4),
                Loop(loop_id=0, iterations=3, level=0),
                Loop(loop_id=1, iterations=2, level=0),
                GenAddr(scratchpad=ScratchpadType.WBUF, loop_id=0, stride=10),
                GenAddr(scratchpad=ScratchpadType.WBUF, loop_id=1, stride=1),
                GenAddr(scratchpad=ScratchpadType.OBUF, loop_id=0, stride=1),
                LdMem(scratchpad=ScratchpadType.WBUF, num_words=5),
                StMem(scratchpad=ScratchpadType.OBUF, num_words=2),
                BlockEnd(),
            ],
        )

    def test_event_count_covers_every_iteration(self):
        trace = interpret_block(self._block())
        # 3 x 2 iterations x 2 memory instructions.
        assert trace.event_count == 12

    def test_equation4_addresses(self):
        trace = interpret_block(self._block())
        wbuf_addresses = {event.address for event in trace.events_for(ScratchpadType.WBUF)}
        # address = i * 10 + j * 1 for i in 0..2, j in 0..1
        assert wbuf_addresses == {0, 1, 10, 11, 20, 21}
        obuf_addresses = {event.address for event in trace.events_for(ScratchpadType.OBUF)}
        assert obuf_addresses == {0, 1, 2}

    def test_words_and_directions(self):
        trace = interpret_block(self._block())
        assert trace.total_words(ScratchpadType.WBUF, "load") == 6 * 5
        assert trace.total_words(ScratchpadType.OBUF, "store") == 6 * 2
        assert trace.total_words(ScratchpadType.IBUF) == 0

    def test_iteration_tuples_recorded(self):
        trace = interpret_block(self._block())
        iterations = {event.iteration for event in trace.events}
        assert iterations == {(i, j) for i in range(3) for j in range(2)}


class TestCompiledBlocks:
    def test_unique_addresses_match_tile_counts_fc(self, tight_config):
        layer = FCLayer(name="fc", in_features=2048, out_features=1024,
                        input_bits=4, weight_bits=4)
        compiled = FusionCompiler(tight_config).compile_compute_layer(layer)
        trace = interpret_block(compiled.block)
        tiling = compiled.tiling
        assert len(trace.unique_addresses(ScratchpadType.WBUF)) == tiling.m_tiles * tiling.n_tiles
        assert len(trace.unique_addresses(ScratchpadType.IBUF)) == tiling.n_tiles * tiling.r_tiles
        assert len(trace.unique_addresses(ScratchpadType.OBUF)) == tiling.m_tiles * tiling.r_tiles

    def test_unique_addresses_match_tile_counts_conv(self, tight_config):
        layer = ConvLayer(name="conv", in_channels=16, out_channels=32, in_height=14,
                          in_width=14, kernel=3, padding=1, input_bits=2, weight_bits=2)
        compiled = FusionCompiler(tight_config).compile_compute_layer(layer)
        trace = interpret_block(compiled.block)
        tiling = compiled.tiling
        assert len(trace.unique_addresses(ScratchpadType.WBUF)) == tiling.m_tiles * tiling.n_tiles
        assert len(trace.unique_addresses(ScratchpadType.IBUF)) == tiling.n_tiles * tiling.r_tiles

    def test_every_iteration_loads_weights_and_inputs(self, tight_config):
        layer = FCLayer(name="fc", in_features=512, out_features=256)
        compiled = FusionCompiler(tight_config).compile_compute_layer(layer)
        trace = interpret_block(compiled.block)
        loads = trace.events_for(ScratchpadType.WBUF, "load")
        total_iterations = 1
        for loop in compiled.block.loops_at_level(0):
            total_iterations *= loop.iterations
        assert len(loads) == total_iterations

    def test_store_words_are_positive(self, tight_config):
        layer = FCLayer(name="fc", in_features=256, out_features=128)
        compiled = FusionCompiler(tight_config).compile_compute_layer(layer)
        trace = interpret_block(compiled.block)
        assert trace.total_words(ScratchpadType.OBUF, "store") > 0

    def test_event_limit_guard(self, tight_config):
        layer = FCLayer(name="fc", in_features=2048, out_features=2048)
        compiled = FusionCompiler(tight_config).compile_compute_layer(layer)
        with pytest.raises(ValueError):
            interpret_block(compiled.block, max_events=4)
