"""Tests for scratchpad-buffer and DRAM-channel accounting."""

from __future__ import annotations

import pytest

from repro.sim.memory import DramChannel, ScratchpadBuffer


class TestScratchpadBuffer:
    def test_capacity_and_fit(self):
        buffer = ScratchpadBuffer(name="ibuf", capacity_kb=32.0)
        assert buffer.capacity_bits == 32 * 1024 * 8
        assert buffer.fits(buffer.capacity_bits)
        assert not buffer.fits(buffer.capacity_bits + 1)

    def test_access_count_rounds_up_to_access_width(self):
        buffer = ScratchpadBuffer(name="wbuf", capacity_kb=1.0, access_bits=32)
        assert buffer.accesses_for_bits(0) == 0
        assert buffer.accesses_for_bits(1) == 1
        assert buffer.accesses_for_bits(32) == 1
        assert buffer.accesses_for_bits(33) == 2

    def test_read_write_counters(self):
        buffer = ScratchpadBuffer(name="obuf", capacity_kb=1.0)
        assert buffer.record_reads(64) == 2
        assert buffer.record_writes(16) == 1
        assert buffer.read_accesses == 2
        assert buffer.write_accesses == 1
        assert buffer.total_accesses == 3
        buffer.reset()
        assert buffer.total_accesses == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScratchpadBuffer(name="", capacity_kb=1.0)
        with pytest.raises(ValueError):
            ScratchpadBuffer(name="x", capacity_kb=0)
        with pytest.raises(ValueError):
            ScratchpadBuffer(name="x", capacity_kb=1.0, access_bits=0)
        buffer = ScratchpadBuffer(name="x", capacity_kb=1.0)
        with pytest.raises(ValueError):
            buffer.accesses_for_bits(-1)
        with pytest.raises(ValueError):
            buffer.fits(-1)


class TestDramChannel:
    def test_cycles_round_up_to_bandwidth(self):
        channel = DramChannel(bandwidth_bits_per_cycle=128)
        assert channel.cycles_for_bits(0) == 0
        assert channel.cycles_for_bits(128) == 1
        assert channel.cycles_for_bits(129) == 2

    def test_traffic_accumulation(self):
        channel = DramChannel(bandwidth_bits_per_cycle=64)
        channel.record_read(640)
        channel.record_write(64)
        assert channel.total_bits == 704
        assert channel.total_cycles == 11
        channel.reset()
        assert channel.total_bits == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DramChannel(bandwidth_bits_per_cycle=0)
        channel = DramChannel(bandwidth_bits_per_cycle=8)
        with pytest.raises(ValueError):
            channel.record_read(-1)
        with pytest.raises(ValueError):
            channel.record_write(-1)
        with pytest.raises(ValueError):
            channel.cycles_for_bits(-5)
