"""Tests for the top-level BitFusionAccelerator object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import BitFusionAccelerator
from repro.core.config import BitFusionConfig
from repro.dnn import models


class TestConstruction:
    def test_default_configuration_is_eyeriss_matched(self):
        accelerator = BitFusionAccelerator()
        assert accelerator.config.fusion_units == 512
        assert accelerator.config.name == "bitfusion-eyeriss-matched"

    def test_custom_configuration(self, small_config):
        accelerator = BitFusionAccelerator(small_config)
        assert accelerator.config is small_config

    def test_describe_mentions_key_parameters(self):
        description = BitFusionAccelerator().describe()
        assert "512" in description or "8192" in description
        assert "MHz" in description
        assert "GOPS" in description


class TestCompileAndRun:
    def test_compile_returns_program(self):
        accelerator = BitFusionAccelerator()
        program = accelerator.compile(models.load("LeNet-5"))
        assert len(program) > 0

    def test_run_returns_network_result(self):
        accelerator = BitFusionAccelerator()
        result = accelerator.run(models.load("LeNet-5"))
        assert result.network_name == "LeNet-5"
        assert result.batch_size == accelerator.config.batch_size

    def test_run_program_matches_run(self):
        accelerator = BitFusionAccelerator()
        network = models.load("SVHN")
        program = accelerator.compile(network)
        assert accelerator.run_program(program).total_cycles == accelerator.run(network).total_cycles

    def test_explicit_batch_size_overrides_config(self):
        accelerator = BitFusionAccelerator()
        result = accelerator.run(models.load("LSTM"), batch_size=4)
        assert result.batch_size == 4

    def test_optimization_flags_are_forwarded(self):
        network = models.load("LeNet-5")
        fused = BitFusionAccelerator().compile(network)
        unfused = BitFusionAccelerator(enable_layer_fusion=False).compile(network)
        assert len(unfused) > len(fused)


class TestFunctionalArray:
    def test_functional_array_is_bit_exact(self, rng):
        accelerator = BitFusionAccelerator(BitFusionConfig(rows=2, columns=2))
        array = accelerator.functional_array(4, 2)
        weights = rng.integers(-2, 2, size=(3, 10))
        inputs = rng.integers(-8, 8, size=10)
        np.testing.assert_array_equal(array.matvec(weights, inputs), weights @ inputs)

    def test_one_bit_request_maps_to_two_bit_lanes(self):
        array = BitFusionAccelerator().functional_array(1, 1)
        assert array.fusion_config.input_bits == 2
        assert array.fusion_config.weight_bits == 2


class TestPeakThroughput:
    def test_peak_scales_with_bitwidth(self):
        accelerator = BitFusionAccelerator()
        assert accelerator.peak_throughput_gops(2, 2) == pytest.approx(
            16 * accelerator.peak_throughput_gops(8, 8)
        )

    def test_paper_peak_at_eight_bit(self):
        """512 Fusion Units x 1 MAC/cycle x 500 MHz x 2 ops = 512 GOPS."""
        assert BitFusionAccelerator().peak_throughput_gops(8, 8) == pytest.approx(512.0)
