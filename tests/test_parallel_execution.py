"""Tests for the cache-aware parallel worker protocol.

The guarantees of the warm-artifact parallel path:

* a partially-warm ``run_many(jobs=2)`` performs zero redundant
  compilations (program compiles == genuinely new networks) and ships
  workers only the blocks absent from the cache,
* parallel output stays byte-identical to the serial path, experiments
  included,
* in-batch workloads sharing block keys simulate each block once (the
  duplicate defers to the claiming unit instead of re-simulating), and
* one raising workload does not abort the batch: surviving results are
  stored, and the raised error names the failing workload.
"""

from __future__ import annotations

import pytest

from repro.core.config import BitFusionConfig
from repro.harness.runner import run_experiments
from repro.session import (
    EvaluationSession,
    Workload,
    WorkloadExecutionError,
    compile_program,
    execute_workload,
)
from repro.session import engine
from repro.session.cache import network_result_to_dict
from repro.session.engine import WorkUnit, execute_work_unit

_FAST = ("LeNet-5", "LSTM")


def _dicts(results):
    return [network_result_to_dict(result) for result in results]


class _InlinePool:
    """A pool stand-in that runs work units in-process.

    Used where the test needs monkeypatching to reach "worker" execution
    (patches do not cross real process boundaries); the session drives it
    through the same ``submit``/``shutdown`` surface as a real executor.
    """

    class _Future:
        def __init__(self, value):
            self._value = value

        def result(self):
            return self._value

    def submit(self, fn, *args):
        return self._Future(fn(*args))

    def shutdown(self):
        pass


class TestPartiallyWarmParallel:
    def test_partially_warm_run_compiles_only_new_networks(self, tmp_path):
        seed = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache_dir=tmp_path) as warmup:
            warmup.run(seed)

        superset = [
            seed,
            Workload.bitfusion("LSTM", batch_size=4),
            Workload.bitfusion("LeNet-5", batch_size=2),
        ]
        serial = [execute_workload(workload) for workload in superset]
        with EvaluationSession(cache_dir=tmp_path, jobs=2) as warm:
            results = warm.run_many(superset)

        assert _dicts(results) == _dicts(serial)
        # The seeded workload composed straight from disk artifacts...
        assert warm.stats.hits == 1
        assert warm.stats.misses == 2
        # ...and compilations happened exactly once per genuinely new
        # network (LSTM b4 and LeNet-5 b2; the seeded program was reused).
        assert warm.stats.programs.misses == 2
        assert warm.stats.programs.hits == 1
        # Workers simulated exactly the blocks absent from the cache.
        assert warm.stats.workers.units == 2
        assert warm.stats.workers.remote_blocks == warm.stats.blocks.misses
        assert warm.stats.workers.remote_blocks == len(
            compile_program(superset[1])
        ) + len(compile_program(superset[2]))

    def test_fully_warm_parallel_rerun_does_no_work(self, tmp_path):
        workloads = [
            Workload.bitfusion("LeNet-5", batch_size=4),
            Workload.bitfusion("LSTM", batch_size=4),
        ]
        with EvaluationSession(cache_dir=tmp_path, jobs=2) as cold:
            first = cold.run_many(workloads)
        with EvaluationSession(cache_dir=tmp_path, jobs=2) as warm:
            second = warm.run_many(workloads)
        assert _dicts(first) == _dicts(second)
        assert warm.stats.unique_executions == 0
        assert warm.stats.programs.misses == 0
        assert warm.stats.blocks.misses == 0
        assert warm.stats.workers.units == 0
        assert warm.stats.workers.remote_blocks == 0

    def test_in_batch_shared_blocks_simulate_once(self):
        # Two workloads differing only in frequency share every block key
        # (frequency is composition metadata); the second must defer to the
        # first instead of simulating the same blocks twice.
        base = BitFusionConfig.eyeriss_matched(batch_size=4)
        workloads = [
            Workload.bitfusion("LeNet-5", batch_size=4, config=base),
            Workload.bitfusion(
                "LeNet-5", batch_size=4, config=base.with_frequency(250.0)
            ),
        ]
        serial = [execute_workload(workload) for workload in workloads]
        blocks = len(compile_program(workloads[0]))
        with EvaluationSession(jobs=2) as session:
            results = session.run_many(workloads)
        assert _dicts(results) == _dicts(serial)
        assert session.stats.programs.misses == 1
        assert session.stats.programs.hits == 1
        assert session.stats.blocks.misses == blocks
        assert session.stats.workers.remote_blocks == blocks
        # The deferred unit's blocks were reused, not re-simulated.
        assert session.stats.workers.reused_blocks == blocks

    def test_in_batch_identical_layer_content_defers_not_resimulates(self):
        # Two blocks with identical layer *content* but different names
        # (different block keys, same layer key) must simulate once in a
        # parallel batch, exactly as the serial layer-level fallback would.
        from dataclasses import replace as dc_replace

        from repro.isa.block import InstructionBlock
        from repro.isa.program import CompiledBlock, Program
        from repro.session.engine import program_cache_key

        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        original = compile_program(workload)[0]
        renamed = CompiledBlock(
            block=InstructionBlock("renamed-twin", original.block.instructions),
            layer=dc_replace(original.layer, name="renamed-twin"),
            tiling=original.tiling,
            loop_order=original.loop_order,
            fused_layers=tuple(
                dc_replace(layer, name=f"renamed-{i}")
                for i, layer in enumerate(original.fused_layers)
            ),
        )
        doctored = Program("LeNet-5", [original, renamed])

        def seeded_session(**kwargs):
            session = EvaluationSession(**kwargs)
            session.cache.put(program_cache_key(workload), doctored)
            return session

        filler = Workload.bitfusion("LSTM", batch_size=4)
        with seeded_session() as serial_session:
            serial_results = serial_session.run_many([workload, filler])
        with seeded_session(jobs=2) as parallel_session:
            parallel_results = parallel_session.run_many([workload, filler])

        assert _dicts(parallel_results) == _dicts(serial_results)
        for session in (serial_session, parallel_session):
            # The twin was served by layer-level dedupe, never simulated.
            assert session.stats.blocks.misses == 1 + len(compile_program(filler))
            assert session.stats.layers.hits == 1
        assert (
            parallel_session.stats.workers.remote_blocks
            == parallel_session.stats.blocks.misses
        )

    def test_partially_warm_parallel_experiments_match_serial(self, tmp_path):
        with EvaluationSession() as reference:
            serial = [
                rendered for _, rendered, _ in run_experiments(benchmarks=_FAST, session=reference)
            ]
        with EvaluationSession(cache_dir=tmp_path) as warmup:
            run_experiments(keys=["fig16"], benchmarks=_FAST, session=warmup)
        with EvaluationSession(cache_dir=tmp_path, jobs=2) as warm:
            parallel = [
                rendered for _, rendered, _ in run_experiments(benchmarks=_FAST, session=warm)
            ]
        assert parallel == serial
        # The warm-started parallel report reused the seeded artifacts and
        # never executed any workload twice.
        assert warm.stats.max_executions_per_workload() == 1
        assert warm.stats.workers.remote_blocks == warm.stats.blocks.misses


class TestWorkerFailureIsolation:
    def test_worker_error_carries_the_workload_label(self):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        unit = WorkUnit(
            workload=workload,
            program_payload={"network_name": "LeNet-5", "blocks": [{"bogus": True}]},
            simulate_indices=(0,),
        )
        reply = execute_work_unit(unit)
        assert reply.error is not None
        assert "bitfusion/LeNet-5" in reply.error
        assert "batch=4" in reply.error

    def test_one_failing_workload_does_not_abort_the_batch(self, monkeypatch):
        class _FailingSimulator(engine.BitFusionSimulator):
            def run_selected_blocks(self, program, indices):
                if program.network_name == "LSTM":
                    raise RuntimeError("injected block failure")
                return super().run_selected_blocks(program, indices)

        monkeypatch.setattr(engine, "BitFusionSimulator", _FailingSimulator)
        good = Workload.bitfusion("LeNet-5", batch_size=4)
        bad = Workload.bitfusion("LSTM", batch_size=4)
        session = EvaluationSession(jobs=2)
        # Monkeypatches do not cross process boundaries, so drive the same
        # parallel code path through an in-process pool stand-in.
        session._pool = _InlinePool()
        with pytest.raises(WorkloadExecutionError) as excinfo:
            session.run_many([good, bad])
        assert "bitfusion/LSTM" in str(excinfo.value)
        assert len(excinfo.value.failures) == 1
        # The surviving workload's result and artifacts were stored: a
        # rerun is pure cache hits, no new execution.
        executed = session.stats.unique_executions
        result = session.run(good)
        assert session.stats.unique_executions == executed
        assert network_result_to_dict(result) == network_result_to_dict(
            execute_workload(good)
        )
        session.close()

    def test_failed_claimant_recovers_on_its_single_retry(self, monkeypatch):
        # Two workloads share every block key; the claiming unit fails its
        # first (and only faulty) remote simulation.  Its deferred
        # neighbour recovers by simulating inline at compose time, and the
        # claimant itself is then retried once against the now-warm cache —
        # a transient fault costs the batch nothing.
        base = BitFusionConfig.eyeriss_matched(batch_size=4)
        first = Workload.bitfusion("LeNet-5", batch_size=4, config=base)
        second = Workload.bitfusion(
            "LeNet-5", batch_size=4, config=base.with_frequency(250.0)
        )

        real_simulator = engine.BitFusionSimulator
        # The claiming unit is whichever of the two sorts first; fail
        # exactly one remote simulation (the claimant's), then behave.
        state = {"failed": False}

        class _FailOnce(real_simulator):
            def run_selected_blocks(self, program, indices):
                if not state["failed"]:
                    state["failed"] = True
                    raise RuntimeError("injected failure")
                return super().run_selected_blocks(program, indices)

        monkeypatch.setattr(engine, "BitFusionSimulator", _FailOnce)
        session = EvaluationSession(jobs=2)
        session._pool = _InlinePool()
        results = session.run_many([first, second])
        assert session.stats.retries == 1
        assert "workload retries: 1" in session.stats.summary()
        # Both workloads survived with correct results.
        assert len(results) == 2
        for workload, result in zip((first, second), results):
            assert network_result_to_dict(result) == network_result_to_dict(
                execute_workload(workload)
            )
        session.close()
