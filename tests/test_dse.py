"""Tests for the design-space exploration subsystem (repro.dse) and its CLI.

Covered properties:

* a SweepSpec expands to the full, deterministically ordered grid and each
  axis lands on the right configuration/workload field,
* Pareto extraction is exact on synthetic objective vectors (dominated
  points dropped, ties and duplicates kept, input order preserved),
* a sweep along non-compile axes (technology node) reuses one compiled
  program for the whole grid,
* equal-cost workloads schedule in a stable fingerprint order regardless
  of input order, and
* the ``sweep`` subcommand and ``--cache-info`` work end to end, with the
  cache summary matching ``manifest.json``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse import (
    SweepSpec,
    dominates,
    format_sweep_report,
    pareto_front,
    pareto_indices,
    run_sweep,
)
from repro.harness.runner import format_cache_info, main
from repro.session import EvaluationSession, Workload


def small_spec(**overrides):
    payload = {
        "name": "test sweep",
        "networks": ["LeNet-5"],
        "batch_sizes": [16],
        "axes": {"technology": ["45nm", "16nm"]},
    }
    payload.update(overrides)
    return SweepSpec.from_dict(payload)


class TestSpecExpansion:
    def test_grid_size_is_the_cartesian_product(self):
        spec = small_spec(
            networks=["LeNet-5", "LSTM"],
            batch_sizes=[1, 16],
            axes={"array": [[16, 16], [32, 16]], "technology": ["45nm", "16nm", "65nm"]},
        )
        assert spec.grid_size() == 2 * 2 * 2 * 3
        points = spec.expand()
        assert len(points) == spec.grid_size()

    def test_expansion_is_deterministic_and_declaration_ordered(self):
        spec = small_spec(axes={"bandwidth": [64, 128], "technology": ["45nm", "16nm"]})
        first = [point.workload.fingerprint() for point in spec.expand()]
        second = [point.workload.fingerprint() for point in spec.expand()]
        assert first == second
        assert spec.axis_names == ("bandwidth", "technology")
        # The last axis varies fastest, like itertools.product.
        settings = [dict(point.settings) for point in spec.expand()]
        assert [s["technology"] for s in settings[:2]] == ["45nm", "16nm"]
        assert settings[0]["bandwidth"] == settings[1]["bandwidth"] == 64

    def test_axes_land_on_the_right_config_fields(self):
        spec = small_spec(
            axes={
                "array": [[8, 4]],
                "buffers": [[16, 32, 8]],
                "technology": ["16nm"],
                "bandwidth": [256],
                "frequency": [250],
                "fixed_bits": [8],
                "loop_ordering": [False],
            }
        )
        (point,) = spec.expand()
        config = point.workload.config
        assert (config.rows, config.columns) == (8, 4)
        assert (config.ibuf_kb, config.wbuf_kb, config.obuf_kb) == (16, 32, 8)
        assert config.technology.name == "16nm"
        assert config.dram_bandwidth_bits_per_cycle == 256
        assert config.frequency_mhz == 250
        assert point.workload.fixed_bits == 8
        assert point.workload.enable_loop_ordering is False
        assert point.workload.enable_layer_fusion is True

    def test_network_aliases_canonicalize(self):
        spec = small_spec(networks=["lenet5"])
        assert spec.expand()[0].network == "LeNet-5"

    def test_unknown_axis_and_base_config_raise(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            small_spec(axes={"voltage": [1.0]})
        with pytest.raises(ValueError, match="unknown base_config"):
            small_spec(base_config="tpu")
        with pytest.raises(ValueError, match="unknown sweep spec key"):
            SweepSpec.from_dict({"networks": ["LeNet-5"], "axis": {}})

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"networks": ["LeNet-5"], "axes": {"bandwidth": [64, 128]}}),
            encoding="utf-8",
        )
        spec = SweepSpec.from_file(path)
        assert spec.grid_size() == 2


class TestPareto:
    def test_dominated_points_are_dropped(self):
        vectors = [(1.0, 1.0), (2.0, 2.0), (0.5, 3.0), (3.0, 0.5)]
        assert pareto_indices(vectors) == [0, 2, 3]

    def test_equal_vectors_both_survive(self):
        vectors = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert pareto_indices(vectors) == [0, 1]

    def test_single_objective_keeps_all_minima(self):
        assert pareto_indices([(2.0,), (1.0,), (1.0,)]) == [1, 2]

    def test_dominates_requires_strict_improvement_somewhere(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))
        assert dominates((1.0, 0.5), (1.0, 1.0))
        assert not dominates((0.5, 2.0), (1.0, 1.0))

    def test_pareto_front_preserves_input_order(self):
        items = [{"v": (3.0, 0.5)}, {"v": (1.0, 1.0)}, {"v": (2.0, 2.0)}]
        front = pareto_front(items, [lambda item: item["v"][0], lambda item: item["v"][1]])
        assert front == [items[0], items[1]]


class TestParetoSortBasedEquivalence:
    """The sort-based frontier must agree exactly with the quadratic oracle."""

    @settings(max_examples=300, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_matches_quadratic_reference(self, width, data):
        from repro.dse.pareto import pareto_indices_quadratic

        values = st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        )
        vectors = data.draw(
            st.lists(
                st.tuples(*([values] * width)),
                min_size=0,
                max_size=60,
            )
        )
        assert pareto_indices(vectors) == pareto_indices_quadratic(vectors)

    @settings(max_examples=150, deadline=None)
    @given(
        data=st.data(),
    )
    def test_matches_quadratic_on_tie_heavy_grids(self, data):
        # Small integer coordinates force many exact ties and duplicate
        # vectors — the cases where a sloppy sort-based scan goes wrong.
        from repro.dse.pareto import pareto_indices_quadratic

        width = data.draw(st.integers(min_value=1, max_value=3))
        coords = st.integers(min_value=0, max_value=3).map(float)
        vectors = data.draw(
            st.lists(st.tuples(*([coords] * width)), min_size=0, max_size=40)
        )
        assert pareto_indices(vectors) == pareto_indices_quadratic(vectors)

    def test_mismatched_vector_lengths_raise(self):
        from repro.dse.pareto import pareto_indices_quadratic

        with pytest.raises(ValueError):
            pareto_indices([(1.0, 2.0), (1.0,)])
        with pytest.raises(ValueError):
            pareto_indices_quadratic([(1.0, 2.0), (1.0,)])

    def test_nan_objectives_match_quadratic_semantics(self):
        # A NaN-carrying point neither dominates nor is dominated under the
        # oracle's comparisons, so it always survives; the fast path must
        # agree instead of silently dropping it.
        from repro.dse.pareto import pareto_indices_quadratic

        nan = float("nan")
        for vectors in (
            [(1.0, nan)],
            [(1.0, nan), (0.5, 0.5)],
            [(nan,), (1.0,), (2.0,)],
            [(1.0, 2.0, 3.0), (nan, 0.1, 0.1), (1.0, 2.0, 3.0)],
        ):
            assert pareto_indices(vectors) == pareto_indices_quadratic(vectors)

    def test_large_frontier_scales(self):
        # A diagonal grid where every point is on the frontier — the worst
        # case for the frontier-scan fallback — still reduces instantly.
        points = [(float(i), float(2000 - i), 1.0) for i in range(2000)]
        assert pareto_indices(points) == list(range(2000))


class TestParetoArchive:
    def test_incremental_extend_matches_one_shot_reduction(self):
        from repro.dse.pareto import ParetoArchive

        vectors = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (0.5, 4.0), (4.0, 0.5)]
        archive = ParetoArchive()
        for index, vector in enumerate(vectors):
            archive.add(index, vector)
        expected = pareto_indices(vectors)
        assert sorted(archive.items) == expected

    def test_dominated_entry_is_displaced_later(self):
        from repro.dse.pareto import ParetoArchive

        archive = ParetoArchive()
        archive.extend([("worse", (2.0, 2.0))])
        assert archive.items == ["worse"]
        archive.extend([("better", (1.0, 1.0))])
        assert archive.items == ["better"]

    def test_equal_vectors_both_survive(self):
        from repro.dse.pareto import ParetoArchive

        archive = ParetoArchive()
        archive.extend([("a", (1.0, 1.0))])
        archive.extend([("b", (1.0, 1.0))])
        assert archive.items == ["a", "b"]
        assert archive.vectors == [(1.0, 1.0), (1.0, 1.0)]

    def test_empty_extend_is_a_noop(self):
        from repro.dse.pareto import ParetoArchive

        archive = ParetoArchive()
        archive.extend([])
        assert len(archive) == 0

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_batched_feeding_equals_global_frontier(self, data):
        # Transitivity of dominance makes the incremental frontier equal
        # the frontier of everything ever fed, no matter how the stream is
        # chopped into batches.
        from repro.dse.pareto import ParetoArchive, pareto_indices_quadratic

        coords = st.integers(min_value=0, max_value=4).map(float)
        vectors = data.draw(
            st.lists(st.tuples(coords, coords), min_size=0, max_size=40)
        )
        archive = ParetoArchive()
        position = 0
        while position < len(vectors):
            size = data.draw(st.integers(min_value=1, max_value=8))
            batch = vectors[position : position + size]
            archive.extend(list(enumerate(batch, start=position)))
            position += size
        expected = pareto_indices_quadratic(vectors)
        assert sorted(archive.items) == expected


class TestSweepExecution:
    def test_technology_sweep_compiles_each_network_once(self):
        spec = small_spec(
            axes={"array": [[16, 16], [32, 16]], "technology": ["45nm", "16nm"]}
        )
        with EvaluationSession() as session:
            result = run_sweep(spec, session)
        assert len(result) == 4
        # Neither axis reaches the compiler: one compile for the whole grid.
        assert session.stats.programs.misses == 1
        assert session.stats.programs.hits == 3

    def test_buffer_axis_compiles_per_value(self):
        spec = small_spec(axes={"buffers": [[32, 64, 16], [16, 32, 8]]})
        with EvaluationSession() as session:
            run_sweep(spec, session)
        assert session.stats.programs.misses == 2

    def test_pareto_marks_match_report(self):
        spec = small_spec()
        with EvaluationSession() as session:
            result = run_sweep(spec, session)
        report = format_sweep_report(result)
        assert "Pareto frontier" in report
        frontier = result.pareto()
        assert frontier  # at least one non-dominated point
        starred = [row for row in result.rows() if row["pareto"] == "*"]
        assert len(starred) == len(frontier)

    def test_equal_cost_scheduling_is_input_order_independent(self):
        # Same network and batch at two bandwidths: identical cost estimates,
        # so only the fingerprint tiebreak fixes the execution schedule.
        workloads = [
            Workload.bitfusion("LeNet-5", batch_size=4),
            Workload.bitfusion(
                "LeNet-5",
                batch_size=4,
                config=Workload.bitfusion("LeNet-5", batch_size=4).config.with_bandwidth(256),
            ),
        ]
        orders = []
        for batch in (workloads, list(reversed(workloads))):
            with EvaluationSession() as session:
                session.run_many(batch)
            # executions records keys in scheduled order.
            orders.append(list(session.stats.executions))
        assert orders[0] == orders[1]


class TestCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli sweep",
                    "networks": ["LeNet-5"],
                    "axes": {"technology": ["45nm", "16nm"]},
                }
            ),
            encoding="utf-8",
        )
        return path

    def test_sweep_subcommand_cold_then_warm(self, tmp_path, spec_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        assert "Pareto frontier" in cold
        assert "design points" in cold
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert "0 compiles (hit rate 100%)" in warm
        assert "0 block simulations (hit rate 100%)" in warm

    def test_cache_info_matches_manifest(self, tmp_path, spec_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["--cache-info", "--cache-dir", str(cache_dir)]) == 0
        info = capsys.readouterr().out
        manifest = json.loads((cache_dir / "manifest.json").read_text(encoding="utf-8"))
        kinds: dict[str, int] = {}
        for entry in manifest["entries"].values():
            kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
        for kind, count in kinds.items():
            assert f"{kind}: {count} entries" in info
        assert f"total: {len(manifest['entries'])} entries" in info
        # format_cache_info is the same path main() prints.
        assert format_cache_info(str(cache_dir)) == info.strip()

    def test_cache_info_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            main(["--cache-info"])

    def test_sweep_rejects_missing_spec(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", str(tmp_path / "missing.json")])

    def test_dry_run_reports_cold_then_fully_cached(self, tmp_path, spec_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        assert main(["sweep", str(spec_path), "--dry-run", "--cache-dir", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        assert "dry run" in cold
        assert "cold: 2 workloads" in cold
        assert "planned grid already cached: 0/2 points (0%)" in cold
        # Nothing executed: no artifact entries appear (opening the cache
        # directory may rebuild its — empty — manifest index, nothing more).
        assert {p.name for p in cache_dir.glob("*.json")} <= {"manifest.json"}

    def test_dry_run_after_real_sweep_sees_everything_cached(
        self, tmp_path, spec_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        assert main(["sweep", str(spec_path), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["sweep", str(spec_path), "--dry-run", "--cache-dir", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert "fully cached: 2 workloads" in warm
        assert "cold: 0 workloads" in warm
        assert "planned grid already cached: 2/2 points (100%)" in warm
        assert "tiling:" in warm  # the cache summary names the new kind

    def test_dry_run_without_cache_dir_counts_everything_cold(self, spec_path, capsys):
        assert main(["sweep", str(spec_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "cold: 2 workloads" in out
        assert "(no --cache-dir given: every workload counts as cold)" in out

    def test_dry_run_rejects_missing_cache_dir(self, tmp_path, spec_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep",
                    str(spec_path),
                    "--dry-run",
                    "--cache-dir",
                    str(tmp_path / "nope"),
                ]
            )
