"""Tests for the energy models: breakdown, SRAM, DRAM and compute components."""

from __future__ import annotations

import pytest

from repro.core.config import TechnologyNode
from repro.core.fusion_unit import fusion_config_for
from repro.energy.breakdown import EnergyBreakdown
from repro.energy.cacti import SramEnergyModel, sram_access_energy_pj, sram_area_mm2
from repro.energy.components import (
    ComputeEnergyModel,
    FUSION_UNIT_AREA_UM2,
    FUSION_UNIT_POWER_NW,
    TEMPORAL_UNIT_AREA_UM2,
    TEMPORAL_UNIT_POWER_NW,
    fusion_unit_area_breakdown,
    temporal_unit_area_breakdown,
)
from repro.energy.dram import DramEnergyModel


class TestEnergyBreakdown:
    def test_total_and_fractions(self):
        breakdown = EnergyBreakdown(compute=1.0, buffers=2.0, register_file=3.0, dram=4.0)
        assert breakdown.total == 10.0
        fractions = breakdown.fractions()
        assert fractions["dram"] == pytest.approx(0.4)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_breakdown_fractions_are_zero(self):
        assert all(v == 0.0 for v in EnergyBreakdown().fractions().values())

    def test_addition_and_sum(self):
        a = EnergyBreakdown(compute=1.0, dram=2.0)
        b = EnergyBreakdown(buffers=0.5, dram=1.0)
        combined = a + b
        assert combined.compute == 1.0
        assert combined.dram == 3.0
        assert EnergyBreakdown.sum([a, b]).total == combined.total
        assert EnergyBreakdown.sum([]).total == 0.0

    def test_scaled(self):
        breakdown = EnergyBreakdown(compute=2.0, dram=4.0).scaled(0.5)
        assert breakdown.compute == 1.0
        assert breakdown.dram == 2.0
        with pytest.raises(ValueError):
            EnergyBreakdown().scaled(-1)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(compute=-1.0)


class TestSramModel:
    def test_energy_grows_with_capacity(self):
        assert sram_access_energy_pj(64, 32) > sram_access_energy_pj(1, 32)

    def test_energy_scales_with_access_width(self):
        assert sram_access_energy_pj(32, 64) == pytest.approx(2 * sram_access_energy_pj(32, 32))

    def test_area_grows_linearly(self):
        assert sram_area_mm2(64) == pytest.approx(64 * sram_area_mm2(1))

    def test_model_object_consistency(self):
        model = SramEnergyModel(capacity_kb=32, access_bits=32)
        assert model.energy_per_access_pj == pytest.approx(sram_access_energy_pj(32, 32))
        assert model.energy_per_bit_pj == pytest.approx(model.energy_per_access_pj / 32)
        assert model.energy_for_accesses_j(1e12) == pytest.approx(model.energy_per_access_pj)
        assert model.energy_for_bits_j(32e12) == pytest.approx(model.energy_per_access_pj)

    def test_validation(self):
        with pytest.raises(ValueError):
            sram_access_energy_pj(0, 32)
        with pytest.raises(ValueError):
            sram_access_energy_pj(32, 0)
        with pytest.raises(ValueError):
            sram_area_mm2(0)
        with pytest.raises(ValueError):
            SramEnergyModel(capacity_kb=0)
        model = SramEnergyModel(capacity_kb=1)
        with pytest.raises(ValueError):
            model.energy_for_bits_j(-1)


class TestDramModel:
    def test_default_energy_per_bit(self):
        model = DramEnergyModel()
        assert model.energy_for_bits_j(1e12) == pytest.approx(20.0)
        assert model.energy_for_bytes_j(1) == pytest.approx(8 * 20e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramEnergyModel(pj_per_bit=0)
        with pytest.raises(ValueError):
            DramEnergyModel().energy_for_bits_j(-1)


class TestSynthesisConstants:
    def test_figure10_totals(self):
        """Figure 10: hybrid Fusion Unit is ~3.5x smaller and ~3.2x lower power."""
        assert TEMPORAL_UNIT_AREA_UM2 / FUSION_UNIT_AREA_UM2 == pytest.approx(3.5, rel=0.05)
        assert TEMPORAL_UNIT_POWER_NW / FUSION_UNIT_POWER_NW == pytest.approx(3.2, rel=0.05)

    def test_breakdowns_sum_to_totals(self):
        assert sum(fusion_unit_area_breakdown().values()) == pytest.approx(
            FUSION_UNIT_AREA_UM2, rel=0.01
        )
        assert sum(temporal_unit_area_breakdown().values()) == pytest.approx(
            TEMPORAL_UNIT_AREA_UM2, rel=0.01
        )

    def test_register_dominates_temporal_design(self):
        """The temporal design's accumulation registers are its area problem."""
        temporal = temporal_unit_area_breakdown()
        fusion = fusion_unit_area_breakdown()
        assert temporal["register"] / fusion["register"] == pytest.approx(16.0, rel=0.05)


class TestComputeEnergyModel:
    def test_mac_energy_scales_with_bricks(self):
        model = ComputeEnergyModel(technology=TechnologyNode.nm45())
        full = model.fusion_mac_energy_pj(fusion_config_for(8, 8))
        quarter = model.fusion_mac_energy_pj(fusion_config_for(4, 4))
        sixteenth = model.fusion_mac_energy_pj(fusion_config_for(2, 2))
        assert full == pytest.approx(4 * quarter)
        assert full == pytest.approx(16 * sixteenth)

    def test_sixteen_bit_mac_is_most_expensive(self):
        model = ComputeEnergyModel(technology=TechnologyNode.nm45())
        assert model.fusion_mac_energy_pj(fusion_config_for(16, 16)) > model.fusion_mac_energy_pj(
            fusion_config_for(8, 8)
        )

    def test_technology_scaling_reduces_energy(self):
        at_45 = ComputeEnergyModel(technology=TechnologyNode.nm45())
        at_16 = ComputeEnergyModel(technology=TechnologyNode.nm16())
        config = fusion_config_for(8, 8)
        assert at_16.fusion_mac_energy_pj(config) < at_45.fusion_mac_energy_pj(config)

    def test_eyeriss_energies(self):
        model = ComputeEnergyModel(technology=TechnologyNode.nm45())
        assert model.eyeriss_mac_energy_pj() > model.fusion_mac_energy_pj(fusion_config_for(8, 8))
        assert model.eyeriss_rf_energy_per_mac_pj() > model.eyeriss_mac_energy_pj()
        with pytest.raises(ValueError):
            model.eyeriss_rf_energy_per_mac_pj(-1)

    def test_stripes_energy_scales_with_weight_bits(self):
        model = ComputeEnergyModel(technology=TechnologyNode.nm45())
        assert model.stripes_mac_energy_pj(8) == pytest.approx(
            2 * model.stripes_mac_energy_pj(4)
        )
        with pytest.raises(ValueError):
            model.stripes_mac_energy_pj(0)

    def test_total_energy_helper(self):
        model = ComputeEnergyModel(technology=TechnologyNode.nm45())
        config = fusion_config_for(4, 4)
        assert model.fusion_energy_for_macs_j(config, 1e12) == pytest.approx(
            model.fusion_mac_energy_pj(config)
        )
        with pytest.raises(ValueError):
            model.fusion_energy_for_macs_j(config, -1)

    def test_fusion_units_per_area(self):
        model = ComputeEnergyModel(technology=TechnologyNode.nm45())
        per_mm2 = model.fusion_units_per_mm2()
        assert 500 < per_mm2 < 1000  # ~717 at the published 1394 um^2
