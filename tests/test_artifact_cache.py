"""Tests for the two-level artifact cache: manifest, eviction, warm sweeps.

Covers the acceptance criteria of the staged-pipeline refactor:

* a batch-size sweep (Figure 16) over a warm cache performs zero
  recompilations and zero block simulations,
* a repeated report against a persistent cache directory reports a 100%
  program-cache hit rate in its footer (the CI smoke job greps for this),
* the on-disk store carries a versioned ``manifest.json`` and enforces an
  LRU size budget, and
* ``run_many`` schedules uncached workloads longest-job-first.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import replace

import pytest

from repro.harness.experiments import fig16_batch
from repro.harness.runner import build_report
from repro.isa.block import InstructionBlock
from repro.isa.program import CompiledBlock
from repro.session import (
    EvaluationSession,
    ResultCache,
    Workload,
    compile_program,
    estimated_cost,
    execute_workload,
    layer_cache_key,
)
from repro.session.cache import (
    MANIFEST_SCHEMA_VERSION,
    ProgramStats,
    network_result_to_dict,
)
from repro.session.workload import load_network


def _stats(tag: str) -> ProgramStats:
    return ProgramStats(
        network_name=f"net-{tag}",
        block_instruction_counts=(10, 20, 30),
        total_instructions=60,
        binary_bytes=240,
    )


def _entry_stems(tmp_path) -> set[str]:
    return {p.stem for p in tmp_path.glob("*.json")} - {"manifest"}


class TestManifest:
    def test_manifest_written_with_schema_version_and_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("alpha", _stats("a"))
        cache.put("beta", _stats("b"))
        cache.flush()  # manifest updates are batched; flush makes them visible
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert set(manifest["entries"]) == {"alpha", "beta"}
        for entry in manifest["entries"].values():
            assert entry["kind"] == "program_stats"
            assert entry["bytes"] > 0
            assert entry["seq"] > 0

    def test_missing_manifest_is_rebuilt_from_entry_files(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("alpha", _stats("a"))
        first.flush()
        (tmp_path / "manifest.json").unlink()
        second = ResultCache(tmp_path)
        assert second.get("alpha") == _stats("a")
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        assert set(manifest["entries"]) == {"alpha"}

    def test_stale_schema_version_triggers_rebuild(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("alpha", _stats("a"))
        first.flush()
        manifest_path = tmp_path / "manifest.json"
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        payload["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        payload["entries"] = {"ghost": {"kind": "x", "bytes": 1, "seq": 1}}
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")
        second = ResultCache(tmp_path)
        assert second.get("alpha") == _stats("a")
        rebuilt = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert rebuilt["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert set(rebuilt["entries"]) == {"alpha"}

    def test_malformed_manifest_entry_values_trigger_rebuild(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("alpha", _stats("a"))
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(
            json.dumps({"schema_version": MANIFEST_SCHEMA_VERSION, "entries": {"abc": 5}}),
            encoding="utf-8",
        )
        second = ResultCache(tmp_path)  # must rebuild, not crash
        assert second.get("alpha") == _stats("a")
        rebuilt = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert set(rebuilt["entries"]) == {"alpha"}

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)

    def test_read_only_cache_dir_still_serves_entries(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.put("alpha", _stats("a"))
        writer.flush()
        # Force the next open to attempt a manifest rebuild, then make the
        # directory read-only: reads must degrade gracefully, not crash.
        (tmp_path / "manifest.json").unlink()
        os.chmod(tmp_path, 0o555)
        try:
            reader = ResultCache(tmp_path)
            assert reader.get("alpha") == _stats("a")
            reader.flush()  # no pending write must escape as an error either
            # A miss that computes fresh data keeps it memory-only instead
            # of crashing on the unwritable entry file.
            reader.put("beta", _stats("b"))
            assert reader.get("beta") == _stats("b")
        finally:
            os.chmod(tmp_path, 0o755)

    def test_non_numeric_manifest_fields_trigger_rebuild(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("alpha", _stats("a"))
        first.flush()
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(
            json.dumps(
                {
                    "schema_version": MANIFEST_SCHEMA_VERSION,
                    "entries": {"alpha": {"kind": "x", "bytes": 1, "seq": "oops"}},
                }
            ),
            encoding="utf-8",
        )
        second = ResultCache(tmp_path)  # must rebuild, not crash
        assert second.get("alpha") == _stats("a")


class TestLruEviction:
    def test_size_budget_evicts_oldest_entries(self, tmp_path):
        probe = ResultCache(tmp_path)
        probe.put("probe", _stats("p"))
        probe.flush()
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        entry_bytes = manifest["entries"]["probe"]["bytes"]
        (tmp_path / "probe.json").unlink()
        (tmp_path / "manifest.json").unlink()

        # Budget for roughly two entries; writing four must keep it bounded.
        cache = ResultCache(tmp_path, max_bytes=int(entry_bytes * 2.5))
        for index in range(4):
            cache.put(f"key{index}", _stats(str(index)))
        cache.flush()
        stems = _entry_stems(tmp_path)
        assert "key3" in stems  # the newest entry always survives
        assert "key0" not in stems  # the oldest went first
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        assert set(manifest["entries"]) == stems
        total = sum(entry["bytes"] for entry in manifest["entries"].values())
        assert total <= int(entry_bytes * 2.5)

    def test_recently_read_entries_survive_eviction(self, tmp_path):
        writer = ResultCache(tmp_path)
        for index in range(3):
            writer.put(f"key{index}", _stats(str(index)))
        writer.flush()
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        total = sum(entry["bytes"] for entry in manifest["entries"].values())

        reader = ResultCache(tmp_path, max_bytes=total)
        assert reader.get("key0") is not None  # touch: key0 becomes most recent
        reader.put("key3", _stats("3"))  # over budget: evict LRU, now key1
        stems = _entry_stems(tmp_path)
        assert "key0" in stems
        assert "key3" in stems
        assert "key1" not in stems

    def test_memory_hits_touch_recency_so_hot_entries_survive(self, tmp_path):
        # Entries promoted into memory are the hottest ones; a memory hit
        # must refresh their on-disk recency or --cache-max-mb evicts the
        # hottest entries first.
        writer = ResultCache(tmp_path)
        writer.put("key0", _stats("0"))
        writer.put("key1", _stats("1"))
        writer.flush()
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        total = sum(entry["bytes"] for entry in manifest["entries"].values())

        reader = ResultCache(tmp_path, max_bytes=total)
        assert reader.get("key0") is not None  # disk -> memory promotion
        assert reader.get("key1") is not None  # key1 now most recent...
        assert reader.get("key0") is not None  # ...until this memory hit
        reader.put("key2", _stats("2"))  # over budget: evict the LRU entry
        stems = _entry_stems(tmp_path)
        assert "key0" in stems  # touched by the memory hit, survives
        assert "key2" in stems
        assert "key1" not in stems  # genuinely least recently used

    def test_eviction_drops_disk_entry_not_correctness(self, tmp_path):
        workload = Workload.bitfusion("LeNet-5", batch_size=2)
        with EvaluationSession(cache_dir=tmp_path, max_cache_bytes=1024) as tight:
            first = tight.run(workload)
            # Everything may have been evicted; a rerun must still be correct.
            tight.cache.clear_memory()
            second = tight.run(workload)
        assert first.total_cycles == second.total_cycles
        assert first.energy.total == second.energy.total


class TestWarmSweeps:
    def test_fig16_batch_sweep_over_warm_cache_recompiles_nothing(self, tmp_path):
        benchmarks = ("LeNet-5",)
        sizes = (1, 4, 16)
        with EvaluationSession(cache_dir=tmp_path) as warm_up:
            fig16_batch.run(batch_sizes=sizes, benchmarks=benchmarks, session=warm_up)
        assert warm_up.stats.programs.misses == len(sizes)

        with EvaluationSession(cache_dir=tmp_path) as warm:
            rows = fig16_batch.run(batch_sizes=sizes, benchmarks=benchmarks, session=warm)
        # Zero recompilations, zero block simulations: every artifact whose
        # cycle/energy inputs are unchanged came from the cache.
        assert warm.stats.programs.misses == 0
        assert warm.stats.blocks.misses == 0
        assert warm.stats.misses == 0
        assert warm.stats.unique_executions == 0
        assert warm.stats.programs.hits == len(sizes)
        assert rows and rows[0].speedup_by_batch[1] == 1.0

    def test_bandwidth_sweep_compiles_one_program_even_cold(self):
        session = EvaluationSession()
        session.sweep(["LeNet-5"], bandwidths=(64, 128, 256, 512))
        assert session.stats.programs.misses == 1
        assert session.stats.programs.hits == 3
        # Bandwidth changes every block's memory cycles, so blocks re-run.
        assert session.stats.blocks.hits == 0

    def test_second_report_over_cache_dir_reports_full_program_hits(self, tmp_path):
        keys = ["fig16", "isa"]
        benchmarks = ("LeNet-5",)
        build_report(keys=keys, benchmarks=benchmarks, cache_dir=str(tmp_path))
        report = build_report(keys=keys, benchmarks=benchmarks, cache_dir=str(tmp_path))
        match = re.search(
            r"program cache: (\d+) hits \((\d+) from disk\), (\d+) compiles "
            r"\(hit rate (\d+)%\)",
            report,
        )
        assert match is not None, report
        hits, disk_hits, compiles, rate = map(int, match.groups())
        assert hits > 0
        assert compiles == 0
        assert rate == 100
        assert "block cache:" in report and "0 block simulations" in report


class TestContentAddressedLayerLevel:
    def test_layer_cache_key_ignores_block_and_layer_names(self):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        compiled = compile_program(workload)[0]
        renamed = CompiledBlock(
            block=InstructionBlock("other-net/blk0", compiled.block.instructions),
            layer=replace(compiled.layer, name="other-layer"),
            tiling=compiled.tiling,
            loop_order=compiled.loop_order,
            fused_layers=tuple(
                replace(layer, name=f"other-{i}")
                for i, layer in enumerate(compiled.fused_layers)
            ),
        )
        # The block-level fingerprint sees the rename; the layer-level
        # content fingerprint (and hence the cache key) does not.
        assert renamed.fingerprint() != compiled.fingerprint()
        assert renamed.layer_fingerprint() == compiled.layer_fingerprint()
        assert layer_cache_key(renamed, workload.config) == layer_cache_key(
            compiled, workload.config
        )
        # But genuinely different content does change the layer key.
        other = compile_program(workload)[1]
        assert layer_cache_key(other, workload.config) != layer_cache_key(
            compiled, workload.config
        )

    def test_layer_entries_serve_blocks_when_block_entries_are_gone(self, tmp_path):
        # Simulate the cross-network dedupe case: all block-keyed entries
        # vanish (here: deleted; in a model-family sweep: never written for
        # the sibling network) and every block resolves through the
        # content-addressed layer level — zero re-simulation, byte-identical.
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache_dir=tmp_path) as first:
            fresh = first.run(workload)
        blocks = len(compile_program(workload))
        removed = 0
        for path in tmp_path.glob("*.json"):
            if path.name == "manifest.json":
                continue
            if json.loads(path.read_text(encoding="utf-8"))["kind"] == "layer_result":
                path.unlink()
                removed += 1
        assert removed == blocks
        with EvaluationSession(cache_dir=tmp_path) as second:
            restored = second.run(workload)
        assert second.stats.unique_executions == 0
        assert second.stats.blocks.hits == 0
        assert second.stats.blocks.misses == 0
        assert second.stats.layers.hits == blocks
        assert network_result_to_dict(restored) == network_result_to_dict(fresh)

    def test_entry_summary_reports_the_layer_kind(self, tmp_path):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        blocks = len(compile_program(workload))
        with EvaluationSession(cache_dir=tmp_path) as session:
            session.run(workload)
        summary = ResultCache(tmp_path).entry_summary()
        assert summary["layer"]["entries"] == blocks
        assert summary["layer_result"]["entries"] == blocks
        assert summary["program"]["entries"] == 1
        assert summary["layer"]["bytes"] > 0

    def test_layer_entries_are_stored_name_free(self, tmp_path):
        # The stored layer-level payload must not depend on which network
        # (or layer name) wrote it first, or the dedupe would leak names.
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache_dir=tmp_path) as session:
            session.run(workload)
        compiled = compile_program(workload)[0]
        key = layer_cache_key(compiled, workload.config)
        entry = json.loads((tmp_path / f"{key}.json").read_text(encoding="utf-8"))
        assert entry["kind"] == "layer"
        assert entry["payload"]["name"] == ""


class TestLongestJobFirst:
    def test_estimated_cost_scales_with_network_and_batch(self):
        small = Workload.bitfusion("LeNet-5", batch_size=1)
        bigger_batch = Workload.bitfusion("LeNet-5", batch_size=64)
        big_network = Workload.bitfusion("AlexNet", batch_size=1)
        assert estimated_cost(bigger_batch) == 64 * estimated_cost(small)
        assert estimated_cost(big_network) > estimated_cost(small)
        macs = load_network(small).total_macs()
        assert estimated_cost(small) == macs

    def test_run_many_result_order_is_input_order_despite_scheduling(self):
        workloads = [
            Workload.bitfusion("LeNet-5", batch_size=1),
            Workload.bitfusion("AlexNet", batch_size=4),
            Workload.bitfusion("LSTM", batch_size=2),
        ]
        results = EvaluationSession().run_many(workloads)
        for workload, result in zip(workloads, results):
            assert result.batch_size == workload.batch_size
        # Input order is preserved even though AlexNet (the longest job by
        # MAC count x batch) was scheduled first internally.
        assert [r.network_name for r in results] == [
            load_network(w).name for w in workloads
        ]
