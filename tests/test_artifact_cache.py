"""Tests for the two-level artifact cache: manifest, eviction, warm sweeps.

Covers the acceptance criteria of the staged-pipeline refactor:

* a batch-size sweep (Figure 16) over a warm cache performs zero
  recompilations and zero block simulations,
* a repeated report against a persistent cache directory reports a 100%
  program-cache hit rate in its footer (the CI smoke job greps for this),
* the on-disk store carries a versioned ``manifest.json`` and enforces an
  LRU size budget, and
* ``run_many`` schedules uncached workloads longest-job-first.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import replace

import pytest

from repro.harness.experiments import fig16_batch
from repro.harness.runner import build_report, format_cache_info
from repro.isa.block import InstructionBlock
from repro.isa.program import CompiledBlock
from repro.session import (
    EvaluationSession,
    ResultCache,
    Workload,
    compile_program,
    estimated_cost,
    execute_workload,
    layer_cache_key,
    tiling_cache_key,
)
from repro.session.cache import (
    MANIFEST_SCHEMA_VERSION,
    CacheStats,
    ProgramStats,
    network_result_to_dict,
)
from repro.session.workload import load_network


def _stats(tag: str) -> ProgramStats:
    return ProgramStats(
        network_name=f"net-{tag}",
        block_instruction_counts=(10, 20, 30),
        total_instructions=60,
        binary_bytes=240,
    )


def _live_keys(cache_dir) -> set[str]:
    """Keys a fresh reader can resolve from disk — layout-independent.

    The pack layout has no per-entry files to glob, so eviction tests check
    what a brand-new :class:`ResultCache` actually serves (store-index keys
    plus any legacy per-entry files).
    """
    return ResultCache(cache_dir).disk_keys()


class TestManifest:
    def test_manifest_written_with_schema_version_and_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("alpha", _stats("a"))
        cache.put("beta", _stats("b"))
        cache.flush()  # manifest updates are batched; flush makes them visible
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert set(manifest["entries"]) == {"alpha", "beta"}
        for entry in manifest["entries"].values():
            assert entry["kind"] == "program_stats"
            assert entry["bytes"] > 0
            assert entry["seq"] > 0

    def test_missing_manifest_is_rebuilt_from_entry_files(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("alpha", _stats("a"))
        first.flush()
        (tmp_path / "manifest.json").unlink()
        second = ResultCache(tmp_path)
        assert second.get("alpha") == _stats("a")
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        assert set(manifest["entries"]) == {"alpha"}

    def test_stale_schema_version_triggers_rebuild(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("alpha", _stats("a"))
        first.flush()
        manifest_path = tmp_path / "manifest.json"
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        payload["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        payload["entries"] = {"ghost": {"kind": "x", "bytes": 1, "seq": 1}}
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")
        second = ResultCache(tmp_path)
        assert second.get("alpha") == _stats("a")
        rebuilt = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert rebuilt["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert set(rebuilt["entries"]) == {"alpha"}

    def test_malformed_manifest_entry_values_trigger_rebuild(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("alpha", _stats("a"))
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(
            json.dumps({"schema_version": MANIFEST_SCHEMA_VERSION, "entries": {"abc": 5}}),
            encoding="utf-8",
        )
        second = ResultCache(tmp_path)  # must rebuild, not crash
        assert second.get("alpha") == _stats("a")
        rebuilt = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert set(rebuilt["entries"]) == {"alpha"}

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)

    def test_read_only_cache_dir_still_serves_entries(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.put("alpha", _stats("a"))
        writer.flush()
        # Force the next open to attempt a manifest rebuild, then make the
        # directory read-only: reads must degrade gracefully, not crash.
        (tmp_path / "manifest.json").unlink()
        os.chmod(tmp_path, 0o555)
        try:
            reader = ResultCache(tmp_path)
            assert reader.get("alpha") == _stats("a")
            reader.flush()  # no pending write must escape as an error either
            # A miss that computes fresh data keeps it memory-only instead
            # of crashing on the unwritable entry file.
            reader.put("beta", _stats("b"))
            assert reader.get("beta") == _stats("b")
        finally:
            os.chmod(tmp_path, 0o755)

    def test_non_numeric_manifest_fields_trigger_rebuild(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("alpha", _stats("a"))
        first.flush()
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(
            json.dumps(
                {
                    "schema_version": MANIFEST_SCHEMA_VERSION,
                    "entries": {"alpha": {"kind": "x", "bytes": 1, "seq": "oops"}},
                }
            ),
            encoding="utf-8",
        )
        second = ResultCache(tmp_path)  # must rebuild, not crash
        assert second.get("alpha") == _stats("a")


class TestLruEviction:
    def test_size_budget_evicts_oldest_entries(self, tmp_path):
        # Probe one entry's stored size in a scratch directory (all the
        # _stats payloads here are the same size by construction).
        probe = ResultCache(tmp_path / "probe")
        probe.put("probe", _stats("p"))
        probe.flush()
        manifest = json.loads(
            (tmp_path / "probe" / "manifest.json").read_text(encoding="utf-8")
        )
        entry_bytes = manifest["entries"]["probe"]["bytes"]

        # Budget for roughly two entries; writing four must keep it bounded.
        cache_dir = tmp_path / "real"
        cache = ResultCache(cache_dir, max_bytes=int(entry_bytes * 2.5))
        for index in range(4):
            cache.put(f"key{index}", _stats(str(index)))
        cache.flush()
        keys = _live_keys(cache_dir)
        assert "key3" in keys  # the newest entry always survives
        assert "key0" not in keys  # the oldest went first
        manifest = json.loads((cache_dir / "manifest.json").read_text(encoding="utf-8"))
        assert set(manifest["entries"]) == keys
        total = sum(entry["bytes"] for entry in manifest["entries"].values())
        assert total <= int(entry_bytes * 2.5)

    def test_recently_read_entries_survive_eviction(self, tmp_path):
        writer = ResultCache(tmp_path)
        for index in range(3):
            writer.put(f"key{index}", _stats(str(index)))
        writer.flush()
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        total = sum(entry["bytes"] for entry in manifest["entries"].values())

        reader = ResultCache(tmp_path, max_bytes=total)
        assert reader.get("key0") is not None  # touch: key0 becomes most recent
        reader.put("key3", _stats("3"))  # over budget: evict LRU, now key1
        keys = _live_keys(tmp_path)
        assert "key0" in keys
        assert "key3" in keys
        assert "key1" not in keys

    def test_memory_hits_touch_recency_so_hot_entries_survive(self, tmp_path):
        # Entries promoted into memory are the hottest ones; a memory hit
        # must refresh their on-disk recency or --cache-max-mb evicts the
        # hottest entries first.
        writer = ResultCache(tmp_path)
        writer.put("key0", _stats("0"))
        writer.put("key1", _stats("1"))
        writer.flush()
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        total = sum(entry["bytes"] for entry in manifest["entries"].values())

        reader = ResultCache(tmp_path, max_bytes=total)
        assert reader.get("key0") is not None  # disk -> memory promotion
        assert reader.get("key1") is not None  # key1 now most recent...
        assert reader.get("key0") is not None  # ...until this memory hit
        reader.put("key2", _stats("2"))  # over budget: evict the LRU entry
        keys = _live_keys(tmp_path)
        assert "key0" in keys  # touched by the memory hit, survives
        assert "key2" in keys
        assert "key1" not in keys  # genuinely least recently used

    def test_eviction_drops_disk_entry_not_correctness(self, tmp_path):
        workload = Workload.bitfusion("LeNet-5", batch_size=2)
        with EvaluationSession(cache_dir=tmp_path, max_cache_bytes=1024) as tight:
            first = tight.run(workload)
            # Everything may have been evicted; a rerun must still be correct.
            tight.cache.clear_memory()
            second = tight.run(workload)
        assert first.total_cycles == second.total_cycles
        assert first.energy.total == second.energy.total


class TestWarmSweeps:
    def test_fig16_batch_sweep_over_warm_cache_recompiles_nothing(self, tmp_path):
        benchmarks = ("LeNet-5",)
        sizes = (1, 4, 16)
        with EvaluationSession(cache_dir=tmp_path) as warm_up:
            fig16_batch.run(batch_sizes=sizes, benchmarks=benchmarks, session=warm_up)
        assert warm_up.stats.programs.misses == len(sizes)

        with EvaluationSession(cache_dir=tmp_path) as warm:
            rows = fig16_batch.run(batch_sizes=sizes, benchmarks=benchmarks, session=warm)
        # Zero recompilations, zero block simulations: every artifact whose
        # cycle/energy inputs are unchanged came from the cache.
        assert warm.stats.programs.misses == 0
        assert warm.stats.blocks.misses == 0
        assert warm.stats.misses == 0
        assert warm.stats.unique_executions == 0
        assert warm.stats.programs.hits == len(sizes)
        assert rows and rows[0].speedup_by_batch[1] == 1.0

    def test_bandwidth_sweep_compiles_one_program_even_cold(self):
        session = EvaluationSession()
        session.sweep(["LeNet-5"], bandwidths=(64, 128, 256, 512))
        assert session.stats.programs.misses == 1
        assert session.stats.programs.hits == 3
        # Bandwidth changes every block's memory cycles, so blocks re-run.
        assert session.stats.blocks.hits == 0

    def test_second_report_over_cache_dir_reports_full_program_hits(self, tmp_path):
        keys = ["fig16", "isa"]
        benchmarks = ("LeNet-5",)
        build_report(keys=keys, benchmarks=benchmarks, cache_dir=str(tmp_path))
        report = build_report(keys=keys, benchmarks=benchmarks, cache_dir=str(tmp_path))
        match = re.search(
            r"program cache: (\d+) hits \((\d+) from disk\), (\d+) compiles "
            r"\(hit rate (\d+)%\)",
            report,
        )
        assert match is not None, report
        hits, disk_hits, compiles, rate = map(int, match.groups())
        assert hits > 0
        assert compiles == 0
        assert rate == 100
        assert "block cache:" in report and "0 block simulations" in report


class TestContentAddressedLayerLevel:
    def test_layer_cache_key_ignores_block_and_layer_names(self):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        compiled = compile_program(workload)[0]
        renamed = CompiledBlock(
            block=InstructionBlock("other-net/blk0", compiled.block.instructions),
            layer=replace(compiled.layer, name="other-layer"),
            tiling=compiled.tiling,
            loop_order=compiled.loop_order,
            fused_layers=tuple(
                replace(layer, name=f"other-{i}")
                for i, layer in enumerate(compiled.fused_layers)
            ),
        )
        # The block-level fingerprint sees the rename; the layer-level
        # content fingerprint (and hence the cache key) does not.
        assert renamed.fingerprint() != compiled.fingerprint()
        assert renamed.layer_fingerprint() == compiled.layer_fingerprint()
        assert layer_cache_key(renamed, workload.config) == layer_cache_key(
            compiled, workload.config
        )
        # But genuinely different content does change the layer key.
        other = compile_program(workload)[1]
        assert layer_cache_key(other, workload.config) != layer_cache_key(
            compiled, workload.config
        )

    def test_layer_entries_serve_blocks_when_block_entries_are_gone(self, tmp_path):
        # Simulate the cross-network dedupe case: all block-keyed entries
        # vanish (here: deleted; in a model-family sweep: never written for
        # the sibling network) and every block resolves through the
        # content-addressed layer level — zero re-simulation, byte-identical.
        # The legacy json layout is forced so entries can be deleted
        # per-file; the pack-store equivalent lives in test_pack_store.py.
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache=ResultCache(tmp_path, layout="json")) as first:
            fresh = first.run(workload)
        blocks = len(compile_program(workload))
        removed = 0
        for path in tmp_path.glob("*.json"):
            if path.name == "manifest.json":
                continue
            if json.loads(path.read_text(encoding="utf-8"))["kind"] == "layer_result":
                path.unlink()
                removed += 1
        assert removed == blocks
        with EvaluationSession(cache_dir=tmp_path) as second:
            restored = second.run(workload)
        assert second.stats.unique_executions == 0
        assert second.stats.blocks.hits == 0
        assert second.stats.blocks.misses == 0
        assert second.stats.layers.hits == blocks
        assert network_result_to_dict(restored) == network_result_to_dict(fresh)

    def test_entry_summary_reports_the_layer_kind(self, tmp_path):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        blocks = len(compile_program(workload))
        with EvaluationSession(cache_dir=tmp_path) as session:
            session.run(workload)
        summary = ResultCache(tmp_path).entry_summary()
        assert summary["layer"]["entries"] == blocks
        assert summary["layer_result"]["entries"] == blocks
        assert summary["program"]["entries"] == 1
        assert summary["layer"]["bytes"] > 0

    def test_layer_entries_are_stored_name_free(self, tmp_path):
        # The stored layer-level payload must not depend on which network
        # (or layer name) wrote it first, or the dedupe would leak names.
        # Checked against the raw stored record in both layouts.
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache=ResultCache(tmp_path / "json", layout="json")) as session:
            session.run(workload)
        compiled = compile_program(workload)[0]
        key = layer_cache_key(compiled, workload.config)
        entry = json.loads((tmp_path / "json" / f"{key}.json").read_text(encoding="utf-8"))
        assert entry["kind"] == "layer"
        assert entry["payload"]["name"] == ""

        with EvaluationSession(cache=ResultCache(tmp_path / "pack", layout="pack")) as session:
            session.run(workload)
        from repro.session import SegmentedStore

        record = SegmentedStore(tmp_path / "pack").get_record(key)
        assert record is not None
        assert record["kind"] == "layer"
        assert record["payload"]["name"] == ""


class TestLayerRecencyAndReuseStats:
    def test_promoted_block_hits_keep_the_backing_layer_entry_hot(self, tmp_path):
        # A layer-level dedupe hit is promoted into memory under the block
        # key without a manifest entry of its own; the recency touch of
        # every repeat hit on that block key must land on the *layer* entry
        # that actually serves it, or the hottest shared layers look
        # LRU-coldest under --cache-max-mb and are evicted first.
        from repro.session.engine import lookup_block
        from repro.sim import BitFusionSimulator

        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        config = workload.config
        compiled_a, compiled_b = compile_program(workload)[:2]
        simulator = BitFusionSimulator(config)
        key_a = layer_cache_key(compiled_a, config)
        key_b = layer_cache_key(compiled_b, config)
        writer = ResultCache(tmp_path)
        writer.put(key_a, replace(simulator.run_block(compiled_a), name=""), kind="layer")
        writer.put(key_b, replace(simulator.run_block(compiled_b), name=""), kind="layer")
        writer.flush()
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        total = sum(entry["bytes"] for entry in manifest["entries"].values())

        reader = ResultCache(tmp_path, max_bytes=total)
        value, level, _ = lookup_block(compiled_a, config, reader)
        assert value is not None
        assert level == "layer"  # dedupe hit, promoted memory-only
        assert reader.get(key_b) is not None  # key_b now most recent on disk
        value, level, source = lookup_block(compiled_a, config, reader)
        assert (level, source) == ("block", "memory")  # served by the promotion
        reader.put("filler", _stats("f"))  # over budget: evict the LRU entry
        keys = _live_keys(tmp_path)
        assert key_a in keys  # the aliased touch kept it hot
        assert key_b not in keys  # genuinely least recently used

    def test_cache_info_reports_layer_reuse_statistics(self, tmp_path):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache_dir=tmp_path) as session:
            session.run(workload)
        key = layer_cache_key(compile_program(workload)[0], workload.config)
        reader = ResultCache(tmp_path)
        for _ in range(3):  # one disk hit, two memory hits — all count
            assert reader.get(key) is not None
        reader.flush()

        summary = ResultCache(tmp_path).entry_summary()
        assert summary["layer"]["refs"] >= 3
        top = ResultCache(tmp_path).top_referenced("layer", limit=2)
        assert top and top[0]["key"] == key
        assert top[0]["refs"] >= 3
        info = format_cache_info(str(tmp_path))
        assert "reuse hits" in info
        assert "layer dedupe ratio" in info
        assert "most-referenced layers" in info
        assert key[:16] in info
        assert "first stored by" in info


class TestLongestJobFirst:
    def test_estimated_cost_scales_with_network_and_batch(self):
        small = Workload.bitfusion("LeNet-5", batch_size=1)
        bigger_batch = Workload.bitfusion("LeNet-5", batch_size=64)
        big_network = Workload.bitfusion("AlexNet", batch_size=1)
        assert estimated_cost(bigger_batch) == 64 * estimated_cost(small)
        assert estimated_cost(big_network) > estimated_cost(small)
        macs = load_network(small).total_macs()
        assert estimated_cost(small) == macs

    def test_run_many_result_order_is_input_order_despite_scheduling(self):
        workloads = [
            Workload.bitfusion("LeNet-5", batch_size=1),
            Workload.bitfusion("AlexNet", batch_size=4),
            Workload.bitfusion("LSTM", batch_size=2),
        ]
        results = EvaluationSession().run_many(workloads)
        for workload, result in zip(workloads, results):
            assert result.batch_size == workload.batch_size
        # Input order is preserved even though AlexNet (the longest job by
        # MAC count x batch) was scheduled first internally.
        assert [r.network_name for r in results] == [
            load_network(w).name for w in workloads
        ]


class TestTilingMemo:
    """Exact hit/miss accounting of the compiler's tiling-plan memo."""

    @staticmethod
    def _search_key_sequence(workload) -> list[str]:
        """The memo keys one compile of ``workload`` looks up, in order."""
        from repro.isa.compiler import FusionCompiler

        keys: list[str] = []

        def recorder(gemm, orders, compute):
            keys.append(tiling_cache_key(gemm, orders, workload.config))
            return compute()

        FusionCompiler(
            workload.config,
            enable_loop_ordering=workload.enable_loop_ordering,
            enable_layer_fusion=workload.enable_layer_fusion,
            plan_resolver=recorder,
        ).compile(load_network(workload), batch_size=workload.batch_size)
        return keys

    @classmethod
    def _unique_search_keys(cls, workload) -> tuple[int, int]:
        """(total searches, unique memo keys) one compile of ``workload`` makes."""
        keys = cls._search_key_sequence(workload)
        return len(keys), len(set(keys))

    def test_resnet_duplicate_shapes_hit_the_memo_exactly(self):
        # ResNet-18's repeated residual blocks: 21 blocks, 12 unique GEMM
        # shapes — the duplicates must be memo hits, never fresh searches.
        workload = Workload.bitfusion("ResNet-18", batch_size=16)
        searches, unique = self._unique_search_keys(workload)
        assert (searches, unique) == (21, 12)
        session = EvaluationSession()
        session.compile_stats(workload)
        assert session.stats.tilings.misses == unique
        assert session.stats.tilings.hits == searches - unique
        assert session.stats.tilings.lookups == searches

    def test_memoized_compile_is_byte_identical(self):
        workload = Workload.bitfusion("ResNet-18", batch_size=16)
        session = EvaluationSession()
        cache, stats = session.cache, session.stats
        from repro.session.engine import program_cache_key

        session.compile_stats(workload)
        memoized = cache.get(program_cache_key(workload))
        assert memoized.fingerprint() == compile_program(workload).fingerprint()

    def test_tiling_plans_shared_across_networks_and_sweep_points(self, tmp_path):
        # Bandwidth/technology-only variations share the program key and
        # never even reach the tiling memo; a buffer variation recompiles
        # but an identical-buffer workload of a *different batch* re-uses
        # nothing (the batch folds into the GEMM R dimension) while a
        # same-shape recompile across sessions hits the memo from disk.
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache_dir=tmp_path) as cold:
            cold.run(workload)
            cold_searches = cold.stats.tilings.misses
            assert cold_searches > 0
            assert cold.stats.tilings.hits == 0

        with EvaluationSession(cache_dir=tmp_path) as warm:
            # Same structure, fresh process: the program cache serves the
            # compile outright, so the memo is not consulted at all...
            warm.run(workload)
            assert warm.stats.tilings.lookups == 0
            # ...but a config variation that changes the *sim* key and not
            # the buffers (bandwidth) recompiles nothing either.
            varied = Workload.bitfusion(
                "LeNet-5",
                batch_size=4,
                config=workload.config.with_bandwidth(256),
            )
            warm.run(varied)
            assert warm.stats.programs.misses == 0
            assert warm.stats.tilings.lookups == 0

        with EvaluationSession(cache_dir=tmp_path) as flags:
            # Disabling loop ordering searches a different order tuple:
            # every lookup must miss (no key collision with the optimized
            # plans), then serve later identical compiles.
            ablated = Workload.bitfusion(
                "LeNet-5", batch_size=4, enable_loop_ordering=False
            )
            flags.run(ablated)
            assert flags.stats.tilings.hits == 0
            assert flags.stats.tilings.misses > 0

    def test_warm_disk_memo_serves_recompiles_across_program_keys(self, tmp_path):
        # Toggling layer fusion changes the *program* key (so the second
        # workload genuinely recompiles) but not a GEMM search's inputs —
        # every compute-layer search of the recompile must be served from
        # the on-disk memo, and only the standalone pooling/activation
        # blocks the unfused program adds may search fresh.
        fused = Workload.bitfusion("LeNet-5", batch_size=4)
        unfused = Workload.bitfusion("LeNet-5", batch_size=4, enable_layer_fusion=False)
        fused_keys = self._search_key_sequence(fused)
        unfused_keys = self._search_key_sequence(unfused)
        assert set(unfused_keys) - set(fused_keys)  # unfused adds aux blocks

        # Replay the expected memo traffic exactly: keys already on disk
        # (from the fused compile) hit from disk once then from memory;
        # genuinely new keys miss once then hit from memory.
        expected_misses = expected_hits = expected_disk_hits = 0
        on_disk, in_memory = set(fused_keys), set()
        for key in unfused_keys:
            if key in in_memory:
                expected_hits += 1
            elif key in on_disk:
                expected_hits += 1
                expected_disk_hits += 1
                in_memory.add(key)
            else:
                expected_misses += 1
                on_disk.add(key)
                in_memory.add(key)

        with EvaluationSession(cache_dir=tmp_path) as first:
            first.run(fused)
        with EvaluationSession(cache_dir=tmp_path) as second:
            second.run(unfused)
            assert second.stats.programs.misses == 1
            assert second.stats.tilings.misses == expected_misses
            assert second.stats.tilings.hits == expected_hits
            assert second.stats.tilings.disk_hits == expected_disk_hits

    def test_tiling_entries_persist_with_their_own_kind(self, tmp_path):
        with EvaluationSession(cache_dir=tmp_path) as session:
            session.run(Workload.bitfusion("LeNet-5", batch_size=4))
        summary = ResultCache(tmp_path).entry_summary()
        assert "tiling" in summary
        assert summary["tiling"]["entries"] > 0
        assert summary["tiling"]["bytes"] > 0

    def test_plan_resolver_round_trip_is_lossless(self, tmp_path):
        # A plan served from disk must equal the freshly computed one —
        # that is what makes memoized compilation byte-identical.
        from repro.core.config import BitFusionConfig
        from repro.isa.instructions import LoopOrder
        from repro.isa.tiling import GemmWorkload, search_tiling
        from repro.session.engine import make_plan_resolver

        config = BitFusionConfig.eyeriss_matched(batch_size=16)
        gemm = GemmWorkload(m=64, n=128, r=1024, input_bits=8, weight_bits=4, output_bits=16)
        orders = tuple(LoopOrder)
        fresh = search_tiling(gemm, config, orders)

        cache, stats = ResultCache(tmp_path), CacheStats()
        resolver = make_plan_resolver(config, cache, stats)
        assert resolver(gemm, orders, lambda: fresh) == fresh
        assert stats.tilings.misses == 1

        reread_stats = CacheStats()
        reread = make_plan_resolver(config, ResultCache(tmp_path), reread_stats)
        served = reread(gemm, orders, lambda: pytest.fail("memo should have served"))
        assert served == fresh
        assert reread_stats.tilings.hits == 1
        assert reread_stats.tilings.disk_hits == 1
