"""Tests for the Bit Fusion simulator (compile + execute networks)."""

from __future__ import annotations

import pytest

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import ConvLayer, FCLayer, PoolLayer
from repro.dnn.network import Network
from repro.isa.compiler import FusionCompiler
from repro.sim.executor import BitFusionSimulator, simulate_network


@pytest.fixture
def simulator(default_config) -> BitFusionSimulator:
    return BitFusionSimulator(default_config)


def _fc_network(input_bits=4, weight_bits=4, in_features=1024, out_features=1024) -> Network:
    return Network(
        "fc-net",
        [FCLayer(name="fc", in_features=in_features, out_features=out_features,
                 input_bits=input_bits, weight_bits=weight_bits)],
    )


class TestRunBlock:
    def test_block_result_fields(self, simulator, default_config):
        compiler = FusionCompiler(default_config)
        block = compiler.compile_compute_layer(
            FCLayer(name="fc", in_features=512, out_features=256, input_bits=4, weight_bits=2)
        )
        result = simulator.run_block(block)
        assert result.name == "fc"
        assert result.macs == 512 * 256 * default_config.batch_size
        assert result.compute_cycles > 0
        assert result.memory_cycles > 0
        assert result.energy.total > 0
        assert 0 < result.utilization <= 1.0

    def test_auxiliary_block_is_memory_bound(self, simulator, default_config):
        compiler = FusionCompiler(default_config)
        block = compiler.compile_auxiliary_layer(
            PoolLayer(name="pool", channels=64, in_height=32, in_width=32, kernel=2, stride=2)
        )
        result = simulator.run_block(block)
        assert result.macs == 0
        assert result.compute_cycles == 0
        assert result.memory_cycles > 0
        assert result.is_memory_bound

    def test_buffer_traffic_scales_with_work(self, simulator, default_config):
        compiler = FusionCompiler(default_config)
        small = simulator.run_block(
            compiler.compile_compute_layer(FCLayer(name="s", in_features=128, out_features=128))
        )
        large = simulator.run_block(
            compiler.compile_compute_layer(FCLayer(name="l", in_features=1024, out_features=1024))
        )
        assert large.traffic.wbuf_read_bits > small.traffic.wbuf_read_bits
        assert large.traffic.dram_total_bits > small.traffic.dram_total_bits

    def test_no_register_file_energy(self, simulator, default_config):
        compiler = FusionCompiler(default_config)
        block = compiler.compile_compute_layer(FCLayer(name="fc", in_features=256, out_features=64))
        result = simulator.run_block(block)
        assert result.energy.register_file == 0.0


class TestRunSelectedBlocks:
    def test_selected_blocks_match_full_run(self, simulator, default_config):
        compiler = FusionCompiler(default_config)
        program = compiler.compile(models.load("LeNet-5"), batch_size=4)
        assert len(program) >= 3
        full = simulator.run_blocks(program)
        selected = simulator.run_selected_blocks(program, [2, 0])
        # Results come back in the requested order and match the full run.
        assert selected == [full[2], full[0]]
        assert simulator.run_selected_blocks(program, []) == []


class TestRunNetwork:
    def test_network_result_aggregates_blocks(self, simulator):
        result = simulator.run_network(models.load("LeNet-5"))
        assert result.network_name == "LeNet-5"
        assert result.platform == simulator.config.name
        assert len(result.layers) >= 4
        assert result.total_cycles == sum(layer.total_cycles for layer in result.layers)

    def test_total_macs_scale_with_batch(self, default_config):
        network = models.load("LeNet-5")
        small = BitFusionSimulator(default_config).run_network(network, batch_size=1)
        large = BitFusionSimulator(default_config).run_network(network, batch_size=8)
        assert large.total_macs == 8 * small.total_macs

    def test_simulate_network_convenience(self, default_config):
        result = simulate_network(models.load("LSTM"), default_config)
        assert result.total_macs > 0

    def test_lower_bitwidth_network_runs_faster(self, simulator):
        wide = simulator.run_network(_fc_network(8, 8))
        narrow = simulator.run_network(_fc_network(2, 2))
        assert narrow.total_cycles < wide.total_cycles
        assert narrow.energy.total < wide.energy.total

    def test_recurrent_networks_are_memory_bound_at_small_batch(self, default_config):
        simulator = BitFusionSimulator(default_config)
        result = simulator.run_network(models.load("RNN"), batch_size=1)
        assert result.memory_cycles > result.compute_cycles

    def test_bandwidth_increase_helps_memory_bound_networks(self):
        network = models.load("LSTM")
        slow = BitFusionSimulator(BitFusionConfig.eyeriss_matched(bandwidth_bits_per_cycle=32))
        fast = BitFusionSimulator(BitFusionConfig.eyeriss_matched(bandwidth_bits_per_cycle=512))
        assert fast.run_network(network).total_cycles < slow.run_network(network).total_cycles

    def test_batching_amortizes_weight_traffic(self):
        network = models.load("LSTM")
        batch1 = BitFusionSimulator(BitFusionConfig.eyeriss_matched(batch_size=1)).run_network(
            network, batch_size=1
        )
        batch64 = BitFusionSimulator(BitFusionConfig.eyeriss_matched(batch_size=64)).run_network(
            network, batch_size=64
        )
        assert batch64.latency_per_inference_s < batch1.latency_per_inference_s / 5

    def test_disabling_layer_fusion_increases_traffic(self, default_config):
        network = models.load("LeNet-5")
        simulator = BitFusionSimulator(default_config)
        fused = simulator.run_network(network, enable_layer_fusion=True)
        unfused = simulator.run_network(network, enable_layer_fusion=False)
        assert unfused.traffic.dram_total_bits > fused.traffic.dram_total_bits

    def test_energy_is_dominated_by_memory(self, simulator):
        """Figure 14: more than 80% of Bit Fusion energy is data movement."""
        result = simulator.run_network(models.load("Cifar-10"))
        fractions = result.energy.fractions()
        assert fractions["buffers"] + fractions["dram"] > 0.8
        assert fractions["register_file"] == 0.0

    def test_every_benchmark_simulates(self, simulator):
        for name in models.benchmark_names():
            result = simulator.run_network(models.load(name))
            assert result.total_cycles > 0
            assert result.energy.total > 0

    def test_technology_scaling_reduces_energy(self):
        network = models.load("SVHN")
        at_45 = BitFusionSimulator(BitFusionConfig.eyeriss_matched()).run_network(network)
        at_16 = BitFusionSimulator(BitFusionConfig.gpu_scaled_16nm()).run_network(network)
        assert at_16.energy_per_inference_j < at_45.energy_per_inference_j
