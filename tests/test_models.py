"""Tests for the benchmark model zoo (Table II / Figure 1 fidelity)."""

from __future__ import annotations

import pytest

from repro.dnn import models
from repro.harness import paper_data


class TestRegistry:
    def test_eight_benchmarks_in_paper_order(self):
        assert tuple(models.benchmark_names()) == paper_data.BENCHMARK_ORDER

    def test_load_accepts_aliases(self):
        assert models.load("alexnet").name.startswith("AlexNet")
        assert models.load("CIFAR10").name == "Cifar-10"
        assert models.load("lenet5").name == "LeNet-5"

    def test_load_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            models.load("GoogLeNet")

    def test_all_benchmarks_builds_every_network(self):
        networks = models.all_benchmarks()
        assert set(networks) == set(paper_data.BENCHMARK_ORDER)
        assert all(len(network) > 0 for network in networks.values())

    def test_baseline_variants_differ_only_for_wide_models(self):
        assert models.load_baseline_variant("AlexNet").total_macs() < models.load(
            "AlexNet"
        ).total_macs()
        assert models.load_baseline_variant("ResNet-18").total_macs() < models.load(
            "ResNet-18"
        ).total_macs()
        assert models.load_baseline_variant("Cifar-10").total_macs() == models.load(
            "Cifar-10"
        ).total_macs()


class TestTable2Fidelity:
    @pytest.mark.parametrize("name", paper_data.BENCHMARK_ORDER)
    def test_mac_counts_within_thirty_percent_of_paper(self, name):
        """Table II: multiply-add counts should be close to the published workload sizes."""
        measured = models.load(name).total_macs() / 1e6
        published = paper_data.TABLE2_MACS_MOPS[name]
        assert measured == pytest.approx(published, rel=0.30)

    @pytest.mark.parametrize("name", ["Cifar-10", "LSTM", "LeNet-5", "RNN", "SVHN", "VGG-7"])
    def test_weight_footprints_close_to_paper(self, name):
        measured = models.load(name).total_weight_bytes() / 1e6
        published = paper_data.TABLE2_WEIGHTS_MB[name]
        assert measured == pytest.approx(published, rel=0.60)

    @pytest.mark.parametrize("name", paper_data.BENCHMARK_ORDER)
    def test_macs_dominate_operations(self, name):
        """Figure 1's embedded table: >99% of operations are multiply-adds."""
        assert models.load(name).mac_fraction() > 0.99


class TestFigure1Fidelity:
    @pytest.mark.parametrize("name", paper_data.BENCHMARK_ORDER)
    def test_dominant_bitwidth_matches_figure1(self, name):
        profile = models.load(name).bitwidth_profile()
        dominant = max(profile.mac_fraction, key=profile.mac_fraction.get)
        assert dominant == paper_data.FIG1_DOMINANT_BITWIDTHS[name]

    @pytest.mark.parametrize("name", paper_data.BENCHMARK_ORDER)
    def test_majority_of_macs_at_four_bits_or_fewer(self, name):
        """Figure 1(a): on average 97% of multiply-adds need four or fewer bits."""
        profile = models.load(name).bitwidth_profile()
        assert profile.macs_at_or_below(4) > 0.80

    def test_binary_benchmarks_are_mostly_one_bit(self):
        for name in ("Cifar-10", "SVHN"):
            profile = models.load(name).bitwidth_profile()
            assert profile.mac_fraction.get((1, 1), 0.0) > 0.95

    def test_recurrent_benchmarks_are_four_bit(self):
        for name in ("LSTM", "RNN"):
            profile = models.load(name).bitwidth_profile()
            assert profile.mac_fraction.get((4, 4), 0.0) == pytest.approx(1.0)

    def test_ternary_benchmarks_are_two_bit(self):
        for name in ("LeNet-5", "VGG-7", "ResNet-18"):
            profile = models.load(name).bitwidth_profile()
            assert profile.mac_fraction.get((2, 2), 0.0) > 0.90


class TestModelStructure:
    def test_alexnet_entry_and_exit_layers_are_eight_bit(self):
        network = models.load("AlexNet")
        assert network["conv1"].input_bits == 8
        assert network["conv1"].weight_bits == 8
        assert network["fc8"].weight_bits == 8

    def test_alexnet_wide_doubles_channels(self):
        wide = models.load("AlexNet")
        regular = models.load_baseline_variant("AlexNet")
        assert wide["conv2"].out_channels == 2 * regular["conv2"].out_channels

    def test_resnet_has_downsample_projections(self):
        network = models.load("ResNet-18")
        downsamples = [layer for layer in network if layer.name.endswith("downsample")]
        assert len(downsamples) == 3

    def test_resnet_spatial_geometry_is_consistent(self):
        """Every layer's input height must match the previous stage's output."""
        network = models.load("ResNet-18")
        classifier = network["classifier"]
        final_conv = [layer for layer in network if layer.name.endswith("conv2")][-1]
        assert classifier.in_features == final_conv.out_channels

    def test_lstm_network_has_recurrent_and_projection_layers(self):
        network = models.load("LSTM")
        assert network["lstm1"].gates == 4
        assert network["softmax_projection"].out_features == 10_000

    def test_cifar_and_svhn_share_topology_shape(self):
        cifar = models.load("Cifar-10")
        svhn = models.load("SVHN")
        assert len(cifar) == len(svhn)
        assert cifar.total_macs() > svhn.total_macs()
