"""Tests for the Eyeriss baseline model."""

from __future__ import annotations

import pytest

from repro.baselines.eyeriss import EyerissConfig, EyerissModel
from repro.core.accelerator import BitFusionAccelerator
from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import FCLayer
from repro.dnn.network import Network


@pytest.fixture
def eyeriss() -> EyerissModel:
    return EyerissModel()


class TestEyerissConfig:
    def test_table3_defaults(self):
        config = EyerissConfig()
        assert config.pe_count == 168
        assert config.operand_bits == 16
        assert config.frequency_mhz == 500.0
        assert config.global_buffer_kb == pytest.approx(181.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            EyerissConfig(pe_count=0)
        with pytest.raises(ValueError):
            EyerissConfig(conv_utilization=0.0)
        with pytest.raises(ValueError):
            EyerissConfig(fc_utilization=1.5)


class TestEyerissModel:
    def test_runs_every_benchmark(self, eyeriss):
        for name in models.benchmark_names():
            result = eyeriss.run(models.load_baseline_variant(name), batch_size=4)
            assert result.platform == "eyeriss"
            assert result.total_cycles > 0
            assert result.energy.total > 0

    def test_fixed_sixteen_bit_execution(self, eyeriss):
        result = eyeriss.run(models.load("Cifar-10"), batch_size=2)
        for layer in result.layers:
            assert layer.input_bits == 16
            assert layer.weight_bits == 16

    def test_compute_cycles_bounded_by_pe_count(self, eyeriss):
        network = Network("fc", [FCLayer(name="fc", in_features=1024, out_features=1024)])
        result = eyeriss.run(network, batch_size=1)
        macs = 1024 * 1024
        assert result.compute_cycles >= macs / 168

    def test_register_file_dominates_energy(self, eyeriss):
        """Figure 14: Eyeriss spends over 40% of its energy in per-PE register files."""
        result = eyeriss.run(models.load_baseline_variant("AlexNet"), batch_size=16)
        fractions = result.energy.fractions()
        assert fractions["register_file"] > 0.4
        assert fractions["register_file"] > fractions["compute"]

    def test_quantization_does_not_help_eyeriss(self, eyeriss):
        """Eyeriss runs at 16 bits regardless of the model's quantized bitwidths."""
        quantized = Network(
            "q", [FCLayer(name="fc", in_features=512, out_features=512, input_bits=2, weight_bits=2)]
        )
        full = Network(
            "f", [FCLayer(name="fc", in_features=512, out_features=512, input_bits=8, weight_bits=8)]
        )
        assert eyeriss.run(quantized, 4).total_cycles == eyeriss.run(full, 4).total_cycles

    def test_bitfusion_beats_eyeriss_on_every_benchmark(self, eyeriss):
        """The headline Figure 13 direction: Bit Fusion always wins."""
        accelerator = BitFusionAccelerator(BitFusionConfig.eyeriss_matched())
        for name in models.benchmark_names():
            bf = accelerator.run(models.load(name))
            ey = eyeriss.run(models.load_baseline_variant(name), batch_size=16)
            assert bf.speedup_over(ey) > 1.0, name
            assert bf.energy_reduction_over(ey) > 1.0, name

    def test_binary_networks_gain_most(self, eyeriss):
        """Figure 13 shape: Cifar-10/SVHN (1-bit) gain more than AlexNet (4/8-bit)."""
        accelerator = BitFusionAccelerator(BitFusionConfig.eyeriss_matched())

        def speedup(name: str) -> float:
            bf = accelerator.run(models.load(name))
            ey = eyeriss.run(models.load_baseline_variant(name), batch_size=16)
            return bf.speedup_over(ey)

        assert speedup("Cifar-10") > speedup("AlexNet")
        assert speedup("SVHN") > speedup("LSTM")

    def test_describe(self, eyeriss):
        assert "168" in eyeriss.describe()
