"""Tests for the temporal-design comparison and the GPU roofline models."""

from __future__ import annotations

import pytest

from repro.baselines.gpu import GpuModel, GpuPrecision, GpuSpec, TEGRA_X2, TITAN_XP
from repro.baselines.temporal import TemporalDesignComparison, TemporalDesignModel
from repro.dnn import models


class TestTemporalDesignComparison:
    def test_figure10_reductions(self):
        comparison = TemporalDesignComparison()
        assert comparison.area_reduction == pytest.approx(3.5, rel=0.05)
        assert comparison.power_reduction == pytest.approx(3.2, rel=0.05)

    def test_component_rows_include_totals(self):
        comparison = TemporalDesignComparison()
        area_components = {row["component"] for row in comparison.area_rows()}
        assert area_components == {"bitbricks", "shift_add", "register", "total"}
        power_components = {row["component"] for row in comparison.power_rows()}
        assert "total" in power_components

    def test_register_reduction_is_largest(self):
        rows = {row["component"]: row["reduction"] for row in TemporalDesignComparison().area_rows()}
        assert rows["register"] > rows["shift_add"] > rows["bitbricks"]


class TestTemporalDesignModel:
    def test_same_area_packs_more_fusion_units(self):
        model = TemporalDesignModel(compute_area_mm2=1.1)
        assert model.fusion_units_in_area > model.temporal_units_in_area
        assert model.fusion_units_in_area == pytest.approx(
            3.5 * model.temporal_units_in_area, rel=0.05
        )

    def test_temporal_cycles_per_mac(self):
        assert TemporalDesignModel.temporal_cycles_per_mac(2, 2) == 1
        assert TemporalDesignModel.temporal_cycles_per_mac(8, 8) == 16
        assert TemporalDesignModel.temporal_cycles_per_mac(8, 2) == 4
        with pytest.raises(ValueError):
            TemporalDesignModel.temporal_cycles_per_mac(0, 2)

    def test_spatial_fusion_wins_at_every_bitwidth(self):
        model = TemporalDesignModel()
        for bits in (2, 4, 8, 16):
            assert model.throughput_advantage(bits, bits) > 1.0

    def test_rejects_non_positive_area(self):
        with pytest.raises(ValueError):
            TemporalDesignModel(compute_area_mm2=0)


class TestGpuSpec:
    def test_published_peaks(self):
        assert TITAN_XP.peak_fp32_gflops > 10 * TEGRA_X2.peak_fp32_gflops
        assert TITAN_XP.peak_int8_gops > 0
        assert TEGRA_X2.peak_int8_gops == 0

    def test_precision_support(self):
        assert TITAN_XP.supports(GpuPrecision.INT8)
        assert not TEGRA_X2.supports(GpuPrecision.INT8)
        with pytest.raises(ValueError):
            TEGRA_X2.peak_gops(GpuPrecision.INT8)

    def test_operand_bytes(self):
        assert TITAN_XP.operand_bytes(GpuPrecision.FP32) == 4
        assert TITAN_XP.operand_bytes(GpuPrecision.INT8) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuSpec(name="bad", peak_fp32_gflops=0, peak_int8_gops=0,
                    memory_bandwidth_gb_s=10, tdp_w=10)
        with pytest.raises(ValueError):
            GpuSpec(name="bad", peak_fp32_gflops=10, peak_int8_gops=0,
                    memory_bandwidth_gb_s=10, tdp_w=10, achievable_compute_fraction=0)


class TestGpuModel:
    def test_rejects_unsupported_precision(self):
        with pytest.raises(ValueError):
            GpuModel(TEGRA_X2, GpuPrecision.INT8)

    def test_titan_outperforms_tegra(self):
        network = models.load_baseline_variant("AlexNet")
        tegra = GpuModel(TEGRA_X2, GpuPrecision.FP32).run(network, batch_size=16)
        titan = GpuModel(TITAN_XP, GpuPrecision.FP32).run(network, batch_size=16)
        assert titan.speedup_over(tegra) > 5.0

    def test_int8_beats_fp32_on_compute_bound_networks(self):
        network = models.load_baseline_variant("VGG-7")
        fp32 = GpuModel(TITAN_XP, GpuPrecision.FP32).run(network, batch_size=16)
        int8 = GpuModel(TITAN_XP, GpuPrecision.INT8).run(network, batch_size=16)
        assert int8.speedup_over(fp32) > 1.0

    def test_recurrent_networks_are_bandwidth_bound_on_gpu(self):
        result = GpuModel(TITAN_XP, GpuPrecision.FP32).run(models.load("RNN"), batch_size=16)
        assert result.memory_cycles > result.compute_cycles

    def test_energy_uses_tdp(self):
        network = models.load_baseline_variant("LeNet-5")
        tegra = GpuModel(TEGRA_X2, GpuPrecision.FP32).run(network, batch_size=16)
        titan = GpuModel(TITAN_XP, GpuPrecision.FP32).run(network, batch_size=16)
        # The Titan is faster but burns far more power.
        assert titan.average_power_w > tegra.average_power_w

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            GpuModel(TEGRA_X2).run(models.load("LeNet-5"), batch_size=0)

    def test_describe_mentions_device(self):
        assert "Titan" in GpuModel(TITAN_XP, GpuPrecision.INT8).describe()
