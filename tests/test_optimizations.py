"""Tests for the compiler optimizations: loop ordering and layer fusion."""

from __future__ import annotations

import pytest

from repro.dnn.layers import ActivationLayer, ConvLayer, FCLayer, PoolLayer
from repro.isa.instructions import LoopOrder
from repro.isa.optimizations import choose_loop_order, fuse_layers
from repro.isa.tiling import GemmWorkload, plan_tiling


class TestChooseLoopOrder:
    def test_returns_minimum_traffic_plan(self, default_config):
        workload = GemmWorkload(
            m=512, n=4608, r=16384, input_bits=2, weight_bits=2, output_bits=2
        )
        best = choose_loop_order(workload, default_config)
        for order in LoopOrder:
            candidate = plan_tiling(workload, default_config, order)
            assert best.total_dram_bits <= candidate.total_dram_bits

    def test_conv_like_workload_prefers_keeping_weights_on_chip(self, default_config):
        """Large spatial reuse + small weights: weights should be fetched once."""
        workload = GemmWorkload(
            m=128, n=1152, r=16384, input_bits=2, weight_bits=2, output_bits=2
        )
        best = choose_loop_order(workload, default_config)
        assert best.dram_weight_bits == workload.weight_footprint_bits

    def test_fc_like_workload_avoids_weight_refetch(self, default_config):
        """Huge weights, tiny batch: weights must not be re-fetched per output tile."""
        workload = GemmWorkload(
            m=10000, n=1280, r=16, input_bits=4, weight_bits=4, output_bits=8
        )
        best = choose_loop_order(workload, default_config)
        assert best.dram_weight_bits == workload.weight_footprint_bits

    def test_restricting_orders_changes_search_space(self, default_config):
        workload = GemmWorkload(
            m=4096, n=9216, r=64, input_bits=4, weight_bits=1, output_bits=4
        )
        only_output = choose_loop_order(
            workload, default_config, orders=(LoopOrder.OUTPUT_STATIONARY,)
        )
        assert only_output.loop_order is LoopOrder.OUTPUT_STATIONARY

    def test_rejects_empty_order_list(self, default_config):
        workload = GemmWorkload(m=8, n=8, r=8, input_bits=4, weight_bits=4, output_bits=4)
        with pytest.raises(ValueError):
            choose_loop_order(workload, default_config, orders=())


class TestFuseLayers:
    def _layers(self):
        conv = ConvLayer(name="conv", in_channels=4, out_channels=8, in_height=8, in_width=8,
                         kernel=3, padding=1)
        pool = PoolLayer(name="pool", channels=8, in_height=8, in_width=8, kernel=2, stride=2)
        act = ActivationLayer(name="act", elements=128)
        fc = FCLayer(name="fc", in_features=128, out_features=10)
        return conv, pool, act, fc

    def test_pool_and_activation_fuse_into_preceding_conv(self):
        conv, pool, act, fc = self._layers()
        decision = fuse_layers([conv, pool, act, fc])
        assert decision.groups == ((conv, pool, act), (fc,))
        assert decision.fused_layer_count == 2

    def test_fusion_disabled_gives_singleton_groups(self):
        conv, pool, act, fc = self._layers()
        decision = fuse_layers([conv, pool, act, fc], enable=False)
        assert all(len(group) == 1 for group in decision.groups)
        assert decision.fused_layer_count == 0

    def test_leading_pool_layer_gets_its_own_group(self):
        conv, pool, _, _ = self._layers()
        decision = fuse_layers([pool, conv])
        assert decision.groups[0] == (pool,)
        assert decision.groups[1] == (conv,)

    def test_consecutive_compute_layers_never_fuse(self):
        conv, _, _, fc = self._layers()
        decision = fuse_layers([conv, fc])
        assert decision.groups == ((conv,), (fc,))

    def test_empty_layer_list(self):
        assert fuse_layers([]).groups == ()

    def test_every_layer_appears_exactly_once(self):
        conv, pool, act, fc = self._layers()
        layers = [conv, pool, act, fc]
        decision = fuse_layers(layers)
        flattened = [layer for group in decision.groups for layer in group]
        assert flattened == layers
