"""Tests for instruction blocks, their validation and compiled programs."""

from __future__ import annotations

import pytest

from repro.dnn.layers import FCLayer
from repro.isa.block import InstructionBlock
from repro.isa.compiler import FusionCompiler
from repro.isa.instructions import (
    BlockEnd,
    Compute,
    GenAddr,
    LdMem,
    Loop,
    LoopOrder,
    RdBuf,
    ScratchpadType,
    Setup,
    StMem,
    WrBuf,
)
from repro.isa.program import CompiledBlock, Program
from repro.isa.tiling import GemmWorkload, plan_tiling


def _minimal_block(name: str = "layer") -> InstructionBlock:
    return InstructionBlock(
        name,
        [
            Setup(input_bits=4, weight_bits=2),
            Loop(loop_id=0, iterations=8, level=0),
            GenAddr(scratchpad=ScratchpadType.IBUF, loop_id=0, stride=1),
            LdMem(scratchpad=ScratchpadType.IBUF, num_words=16),
            RdBuf(scratchpad=ScratchpadType.IBUF),
            Compute(),
            WrBuf(scratchpad=ScratchpadType.OBUF),
            StMem(scratchpad=ScratchpadType.OBUF, num_words=8),
            BlockEnd(next_block=1),
        ],
    )


class TestInstructionBlockValidation:
    def test_valid_block(self):
        block = _minimal_block()
        assert len(block) == 9
        assert block.input_bits == 4
        assert block.weight_bits == 2
        assert block.block_end.next_block == 1

    def test_requires_setup_first(self):
        with pytest.raises(ValueError):
            InstructionBlock("bad", [Compute(), BlockEnd()])

    def test_requires_block_end_last(self):
        with pytest.raises(ValueError):
            InstructionBlock("bad", [Setup(4, 4), Compute()])

    def test_rejects_nested_setup(self):
        with pytest.raises(ValueError):
            InstructionBlock("bad", [Setup(4, 4), Setup(8, 8), BlockEnd()])

    def test_rejects_duplicate_loop_ids(self):
        with pytest.raises(ValueError):
            InstructionBlock(
                "bad",
                [Setup(4, 4), Loop(1, 2), Loop(1, 3), BlockEnd()],
            )

    def test_rejects_gen_addr_for_undeclared_loop(self):
        with pytest.raises(ValueError):
            InstructionBlock(
                "bad",
                [Setup(4, 4), GenAddr(ScratchpadType.IBUF, 7, 1), BlockEnd()],
            )

    def test_rejects_empty_name_and_empty_body(self):
        with pytest.raises(ValueError):
            InstructionBlock("", [Setup(4, 4), BlockEnd()])
        with pytest.raises(ValueError):
            InstructionBlock("bad", [Setup(4, 4)])


class TestInstructionBlockAccessors:
    def test_loop_queries(self):
        block = _minimal_block()
        assert len(block.loops()) == 1
        assert block.loops_at_level(0)[0].iterations == 8
        assert block.loops_at_level(1) == []

    def test_instruction_category_queries(self):
        block = _minimal_block()
        assert len(block.memory_instructions()) == 2
        assert len(block.buffer_instructions()) == 2
        assert len(block.compute_instructions()) == 1
        assert len(block.address_generators()) == 1

    def test_stats(self):
        stats = _minimal_block().stats()
        assert stats.instruction_count == 9
        assert stats.loop_count == 1
        assert stats.memory_instruction_count == 2
        assert stats.buffer_instruction_count == 2
        assert stats.binary_bytes == 9 * 4
        assert stats.counts_by_opcode["compute"] == 1

    def test_encoding_roundtrips_through_bytes(self):
        from repro.isa.encoding import decode_block

        block = _minimal_block()
        assert decode_block(block.encode()) == list(block.instructions)

    def test_iteration_protocol(self):
        block = _minimal_block()
        assert list(block)[0] == block.setup


class TestProgram:
    def _compiled_block(self, config, name="fc") -> CompiledBlock:
        layer = FCLayer(name=name, in_features=64, out_features=32, input_bits=4, weight_bits=2)
        return FusionCompiler(config).compile_compute_layer(layer)

    def test_append_and_iteration(self, small_config):
        program = Program("net")
        program.append(self._compiled_block(small_config))
        assert len(program) == 1
        assert program[0].name == "fc"
        assert [compiled.name for compiled in program] == ["fc"]

    def test_total_statistics(self, small_config):
        program = Program("net")
        program.append(self._compiled_block(small_config, "a"))
        program.append(self._compiled_block(small_config, "b"))
        assert program.total_instructions() == sum(len(c.block) for c in program)
        assert program.total_binary_bytes() == program.total_instructions() * 4
        assert set(program.instruction_counts()) == {"a", "b"}

    def test_summary_mentions_every_block(self, small_config):
        program = Program("net", [self._compiled_block(small_config, "layer_x")])
        assert "layer_x" in program.summary()

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Program("")

    def test_compiled_block_metadata(self, small_config):
        compiled = self._compiled_block(small_config)
        assert compiled.loop_order in tuple(LoopOrder)
        assert not compiled.is_fused
        assert compiled.tiling.workload.m == 32

    def test_compiled_block_fused_flag(self, small_config):
        workload = GemmWorkload(m=8, n=8, r=4, input_bits=4, weight_bits=4, output_bits=4)
        tiling = plan_tiling(workload, small_config)
        block = _minimal_block("conv+pool")
        layer = FCLayer(name="conv", in_features=8, out_features=8)
        pool = FCLayer(name="pool", in_features=8, out_features=8)
        compiled = CompiledBlock(
            block=block, layer=layer, tiling=tiling,
            loop_order=LoopOrder.OUTPUT_STATIONARY, fused_layers=(pool,),
        )
        assert compiled.is_fused
