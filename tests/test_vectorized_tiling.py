"""The vectorized tiling search against its scalar reference oracle.

The contract under test: :func:`~repro.isa.tiling.search_tiling` (the
numpy grid scorer the compiler runs) returns plans *bit-identical* to
:func:`~repro.isa.tiling.search_tiling_scalar` (the original pure-Python
double loop) on every input — same tile sizes, same loop order, same
traffic totals, and therefore byte-identical compiled programs.  Covered:

* every in-zoo network, compiled whole under several
  ``BitFusionConfig.with_*`` buffer/array geometries and both compiler
  flag settings (program fingerprints must match),
* every individual GEMM the zoo lowers to, for both the full-order search
  and each single order,
* randomized GEMM shapes and buffer geometries (hypothesis),
* the int64-overflow fallback and infeasible-search error parity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.isa.compiler import FusionCompiler
from repro.isa.instructions import LoopOrder
from repro.isa.tiling import (
    GemmWorkload,
    _int64_safe,
    plan_tiling,
    plan_tiling_scalar,
    search_tiling,
    search_tiling_scalar,
)

_BASE = BitFusionConfig.eyeriss_matched(batch_size=16)

#: Buffer/array geometries the oracle tests sweep — the paper default plus
#: smaller and skewed scratchpads that force multi-tile plans and different
#: winning orders.
_GEOMETRIES = (
    _BASE,
    _BASE.with_buffers(16.0, 32.0, 8.0),
    _BASE.with_buffers(4.0, 8.0, 2.0),
    _BASE.with_buffers(64.0, 16.0, 4.0).with_array(32, 16),
    BitFusionConfig.stripes_matched(batch_size=16),
)


def _zoo_gemms(config: BitFusionConfig) -> list[GemmWorkload]:
    compiler = FusionCompiler(config)
    gemms: list[GemmWorkload] = []
    for name in models.BENCHMARKS:
        for layer in models.load(name):
            if layer.has_gemm():
                gemms.append(compiler.gemm_workload(layer, batch_size=16))
    return gemms


class TestZooOracle:
    @pytest.mark.parametrize("config", _GEOMETRIES, ids=lambda c: f"{c.ibuf_kb:g}/{c.wbuf_kb:g}/{c.obuf_kb:g}KB")
    @pytest.mark.parametrize("network", models.BENCHMARKS)
    def test_compiled_programs_byte_identical(self, network, config):
        net = models.load(network)
        vectorized = FusionCompiler(config).compile(net, batch_size=16)
        scalar = FusionCompiler(config, vectorized_search=False).compile(net, batch_size=16)
        assert vectorized.fingerprint() == scalar.fingerprint()
        assert vectorized.to_dict() == scalar.to_dict()

    def test_compiler_flags_byte_identical(self):
        net = models.load("SVHN")
        for loop_ordering in (True, False):
            for layer_fusion in (True, False):
                vectorized = FusionCompiler(
                    _BASE,
                    enable_loop_ordering=loop_ordering,
                    enable_layer_fusion=layer_fusion,
                ).compile(net, batch_size=16)
                scalar = FusionCompiler(
                    _BASE,
                    enable_loop_ordering=loop_ordering,
                    enable_layer_fusion=layer_fusion,
                    vectorized_search=False,
                ).compile(net, batch_size=16)
                assert vectorized.fingerprint() == scalar.fingerprint()

    @pytest.mark.parametrize("config", _GEOMETRIES[:3], ids=lambda c: f"{c.ibuf_kb:g}/{c.wbuf_kb:g}/{c.obuf_kb:g}KB")
    def test_every_zoo_gemm_every_order(self, config):
        orders = tuple(LoopOrder)
        for gemm in _zoo_gemms(config):
            assert search_tiling(gemm, config, orders) == search_tiling_scalar(
                gemm, config, orders
            )
            for order in orders:
                assert plan_tiling(gemm, config, order) == plan_tiling_scalar(
                    gemm, config, order
                )


class TestRandomizedOracle:
    @settings(max_examples=200, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=5000),
        n=st.integers(min_value=1, max_value=5000),
        r=st.integers(min_value=1, max_value=200_000),
        input_bits=st.sampled_from((1, 2, 4, 8, 16)),
        weight_bits=st.sampled_from((1, 2, 4, 8, 16)),
        output_bits=st.sampled_from((8, 16, 32)),
        ibuf_kb=st.sampled_from((1.0, 4.0, 32.0, 128.0)),
        wbuf_kb=st.sampled_from((2.0, 16.0, 64.0, 256.0)),
        obuf_kb=st.sampled_from((0.5, 2.0, 16.0, 64.0)),
    )
    def test_random_gemm_shapes_match_oracle(
        self, m, n, r, input_bits, weight_bits, output_bits, ibuf_kb, wbuf_kb, obuf_kb
    ):
        gemm = GemmWorkload(
            m=m,
            n=n,
            r=r,
            input_bits=input_bits,
            weight_bits=weight_bits,
            output_bits=output_bits,
        )
        config = _BASE.with_buffers(ibuf_kb, wbuf_kb, obuf_kb)
        orders = tuple(LoopOrder)
        try:
            expected = search_tiling_scalar(gemm, config, orders)
        except ValueError:
            with pytest.raises(ValueError):
                search_tiling(gemm, config, orders)
            return
        assert search_tiling(gemm, config, orders) == expected

    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=3000),
        n=st.integers(min_value=1, max_value=3000),
        r=st.integers(min_value=1, max_value=100_000),
        order=st.sampled_from(tuple(LoopOrder)),
    )
    def test_single_order_matches_oracle(self, m, n, r, order):
        gemm = GemmWorkload(
            m=m, n=n, r=r, input_bits=8, weight_bits=8, output_bits=16
        )
        assert plan_tiling(gemm, _BASE, order) == plan_tiling_scalar(gemm, _BASE, order)


class TestEdgeParity:
    def test_overflow_guard_falls_back_to_scalar(self):
        # Large enough that int64 traffic arithmetic could overflow: the
        # guard must reject it and the public search must still agree with
        # the scalar oracle (by delegating to it).
        gemm = GemmWorkload(
            m=1 << 20, n=1 << 20, r=1 << 18, input_bits=32, weight_bits=32, output_bits=32
        )
        assert not _int64_safe(gemm)
        config = _BASE.with_buffers(1024.0, 4096.0, 1024.0)
        orders = tuple(LoopOrder)
        assert search_tiling(gemm, config, orders) == search_tiling_scalar(
            gemm, config, orders
        )

    def test_zoo_workloads_are_int64_safe(self):
        # The guard must never kick in for realistic shapes — otherwise the
        # vectorized win silently evaporates.
        for gemm in _zoo_gemms(_BASE):
            assert _int64_safe(gemm)

    def test_infeasible_search_raises_like_scalar(self):
        gemm = GemmWorkload(m=64, n=64, r=64, input_bits=32, weight_bits=32, output_bits=32)
        tiny = _BASE.with_buffers(0.001, 0.001, 0.001)
        with pytest.raises(ValueError, match="no feasible tiling"):
            search_tiling_scalar(gemm, tiny, tuple(LoopOrder))
        with pytest.raises(ValueError, match="no feasible tiling"):
            search_tiling(gemm, tiny, tuple(LoopOrder))

    def test_empty_orders_rejected(self):
        gemm = GemmWorkload(m=8, n=8, r=8, input_bits=8, weight_bits=8, output_bits=16)
        with pytest.raises(ValueError):
            search_tiling(gemm, _BASE, ())
        with pytest.raises(ValueError):
            search_tiling_scalar(gemm, _BASE, ())
