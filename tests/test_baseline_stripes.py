"""Tests for the Stripes bit-serial baseline model."""

from __future__ import annotations

import pytest

from repro.baselines.stripes import StripesConfig, StripesModel
from repro.core.accelerator import BitFusionAccelerator
from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import FCLayer
from repro.dnn.network import Network


@pytest.fixture
def stripes() -> StripesModel:
    return StripesModel()


class TestStripesConfig:
    def test_table3_defaults(self):
        config = StripesConfig()
        assert config.tiles == 16
        assert config.sips_per_tile == 4096
        assert config.total_sips == 65536
        assert config.frequency_mhz == 980.0
        assert config.input_bits == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            StripesConfig(tiles=0)
        with pytest.raises(ValueError):
            StripesConfig(input_bits=4)


class TestStripesModel:
    def test_serial_weight_bits_clamped(self, stripes):
        assert stripes.serial_weight_bits(FCLayer(name="a", weight_bits=1)) == 1
        assert stripes.serial_weight_bits(FCLayer(name="b", weight_bits=16)) == 16

    def test_performance_scales_inversely_with_weight_bits(self, stripes):
        """Stripes' defining property: time is proportional to weight bitwidth."""
        def cycles(weight_bits: int) -> int:
            network = Network(
                f"fc{weight_bits}",
                [FCLayer(name="fc", in_features=2048, out_features=2048,
                         input_bits=8, weight_bits=weight_bits)],
            )
            return stripes.run(network, batch_size=1).compute_cycles

        assert cycles(8) == pytest.approx(2 * cycles(4), rel=0.05)
        assert cycles(4) == pytest.approx(2 * cycles(2), rel=0.05)

    def test_input_bitwidth_does_not_help_stripes(self, stripes):
        """Stripes fixes inputs at 16 bits; only weights benefit from quantization."""
        narrow_inputs = Network(
            "n", [FCLayer(name="fc", in_features=1024, out_features=1024,
                          input_bits=2, weight_bits=4)]
        )
        wide_inputs = Network(
            "w", [FCLayer(name="fc", in_features=1024, out_features=1024,
                          input_bits=8, weight_bits=4)]
        )
        assert (
            stripes.run(narrow_inputs, 4).compute_cycles
            == stripes.run(wide_inputs, 4).compute_cycles
        )

    def test_runs_every_benchmark(self, stripes):
        for name in models.benchmark_names():
            result = stripes.run(models.load(name), batch_size=4)
            assert result.total_cycles > 0
            assert result.energy.total > 0

    def test_bitfusion_beats_stripes_on_every_benchmark(self, stripes):
        """Figure 18 direction: Bit Fusion wins everywhere in the matched setup."""
        accelerator = BitFusionAccelerator(BitFusionConfig.stripes_matched())
        for name in models.benchmark_names():
            bf = accelerator.run(models.load(name))
            st = stripes.run(models.load(name), batch_size=16)
            assert bf.speedup_over(st) >= 1.0, name
            assert bf.energy_reduction_over(st) > 1.0, name

    def test_low_input_bitwidth_benchmarks_gain_most(self, stripes):
        """Figure 18 shape: LeNet-5 (2-bit inputs) gains more than AlexNet (4/8-bit)."""
        accelerator = BitFusionAccelerator(BitFusionConfig.stripes_matched())

        def speedup(name: str) -> float:
            bf = accelerator.run(models.load(name))
            st = stripes.run(models.load(name), batch_size=16)
            return bf.speedup_over(st)

        assert speedup("LeNet-5") > speedup("AlexNet")

    def test_describe(self, stripes):
        assert "SIP" in stripes.describe()
