"""Round-trip tests for the 32-bit binary encoding of the Fusion-ISA."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (
    INSTRUCTION_BYTES,
    decode_block,
    decode_instruction,
    encode_block,
    encode_instruction,
)
from repro.isa.instructions import (
    BlockEnd,
    Compute,
    ComputeFn,
    GenAddr,
    LdMem,
    Loop,
    RdBuf,
    ScratchpadType,
    Setup,
    StMem,
    WrBuf,
)

_SAMPLE_INSTRUCTIONS = [
    Setup(input_bits=4, weight_bits=1),
    Setup(input_bits=16, weight_bits=16),
    BlockEnd(next_block=0),
    BlockEnd(next_block=65535),
    Loop(loop_id=0, iterations=1, level=0),
    Loop(loop_id=63, iterations=65535, level=1),
    GenAddr(scratchpad=ScratchpadType.IBUF, loop_id=2, stride=0),
    GenAddr(scratchpad=ScratchpadType.WBUF, loop_id=63, stride=65535),
    Compute(fn=ComputeFn.MACC),
    Compute(fn=ComputeFn.MAX),
    Compute(fn=ComputeFn.ACTIVATION),
    LdMem(scratchpad=ScratchpadType.IBUF, num_words=1),
    LdMem(scratchpad=ScratchpadType.WBUF, num_words=65535),
    StMem(scratchpad=ScratchpadType.OBUF, num_words=128),
    RdBuf(scratchpad=ScratchpadType.IBUF),
    RdBuf(scratchpad=ScratchpadType.WBUF),
    WrBuf(scratchpad=ScratchpadType.OBUF),
]


class TestInstructionRoundTrip:
    @pytest.mark.parametrize("instruction", _SAMPLE_INSTRUCTIONS, ids=repr)
    def test_encode_decode_roundtrip(self, instruction):
        word = encode_instruction(instruction)
        assert 0 <= word < (1 << 32)
        assert decode_instruction(word) == instruction

    def test_distinct_instructions_get_distinct_words(self):
        words = [encode_instruction(instruction) for instruction in _SAMPLE_INSTRUCTIONS]
        assert len(set(words)) == len(words)

    def test_decode_rejects_out_of_range_word(self):
        with pytest.raises(ValueError):
            decode_instruction(1 << 32)
        with pytest.raises(ValueError):
            decode_instruction(-1)

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            decode_instruction(31 << 27)

    @given(
        loop_id=st.integers(min_value=0, max_value=63),
        iterations=st.integers(min_value=1, max_value=65535),
        level=st.integers(min_value=0, max_value=3),
    )
    def test_loop_roundtrip_property(self, loop_id, iterations, level):
        loop = Loop(loop_id=loop_id, iterations=iterations, level=level)
        assert decode_instruction(encode_instruction(loop)) == loop

    @given(
        scratchpad=st.sampled_from(list(ScratchpadType)),
        num_words=st.integers(min_value=1, max_value=65535),
    )
    def test_ldmem_roundtrip_property(self, scratchpad, num_words):
        instruction = LdMem(scratchpad=scratchpad, num_words=num_words)
        assert decode_instruction(encode_instruction(instruction)) == instruction


class TestBlockEncoding:
    def test_block_image_size(self):
        image = encode_block(_SAMPLE_INSTRUCTIONS)
        assert len(image) == len(_SAMPLE_INSTRUCTIONS) * INSTRUCTION_BYTES

    def test_block_roundtrip(self):
        image = encode_block(_SAMPLE_INSTRUCTIONS)
        assert decode_block(image) == _SAMPLE_INSTRUCTIONS

    def test_decode_block_rejects_truncated_image(self):
        image = encode_block(_SAMPLE_INSTRUCTIONS)
        with pytest.raises(ValueError):
            decode_block(image[:-1])

    def test_empty_block(self):
        assert encode_block([]) == b""
        assert decode_block(b"") == []
