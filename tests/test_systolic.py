"""Tests for the systolic array: functional GEMMs and timing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BitFusionConfig
from repro.core.systolic import SystolicArray


@pytest.fixture
def array(small_config) -> SystolicArray:
    return SystolicArray(small_config)


class TestConfigurationAndDimensions:
    def test_requires_configuration(self, array):
        with pytest.raises(RuntimeError):
            _ = array.dimensions

    def test_logical_dimensions_follow_fusion_config(self, array):
        dims = array.configure(2, 2)
        assert dims.fused_pes_per_unit == 16
        assert dims.logical_rows == array.config.rows * 16
        assert dims.logical_columns == array.config.columns

    def test_macs_per_cycle(self, array):
        dims = array.configure(4, 4)
        assert dims.macs_per_cycle == array.config.rows * array.config.columns * 4

    def test_macs_per_cycle_with_temporal_passes(self, array):
        dims = array.configure(16, 16)
        assert dims.macs_per_cycle == array.config.rows * array.config.columns / 4


class TestFunctionalExecution:
    def test_matvec_matches_numpy(self, array, rng):
        array.configure(8, 8)
        weights = rng.integers(-128, 128, size=(6, 17))
        inputs = rng.integers(-128, 128, size=17)
        np.testing.assert_array_equal(array.matvec(weights, inputs), weights @ inputs)

    def test_matvec_low_bitwidth(self, array, rng):
        array.configure(2, 2)
        weights = rng.integers(-2, 2, size=(5, 9))
        inputs = rng.integers(-2, 2, size=9)
        np.testing.assert_array_equal(array.matvec(weights, inputs), weights @ inputs)

    def test_matvec_mixed_bitwidth(self, array, rng):
        array.configure(8, 2)
        weights = rng.integers(-2, 2, size=(4, 11))
        inputs = rng.integers(-128, 128, size=11)
        np.testing.assert_array_equal(array.matvec(weights, inputs), weights @ inputs)

    def test_matmul_matches_numpy(self, array, rng):
        array.configure(4, 4)
        weights = rng.integers(-8, 8, size=(7, 13))
        inputs = rng.integers(-8, 8, size=(13, 3))
        np.testing.assert_array_equal(array.matmul(weights, inputs), weights @ inputs)

    def test_matvec_validates_shapes(self, array):
        array.configure(4, 4)
        with pytest.raises(ValueError):
            array.matvec(np.zeros((3, 4)), np.zeros(5))
        with pytest.raises(ValueError):
            array.matvec(np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError):
            array.matvec(np.zeros((3, 4)), np.zeros((4, 2)))

    def test_matmul_validates_shapes(self, array):
        array.configure(4, 4)
        with pytest.raises(ValueError):
            array.matmul(np.zeros((3, 4)), np.zeros(4))


class TestGemmTiming:
    def test_timing_positive_dimensions_required(self, array):
        array.configure(8, 8)
        with pytest.raises(ValueError):
            array.gemm_timing(0, 4)
        with pytest.raises(ValueError):
            array.gemm_timing(4, 4, batch=0)

    def test_small_gemm_single_tile(self, array):
        array.configure(8, 8)
        timing = array.gemm_timing(m=4, n=4, batch=1)
        assert timing.compute_cycles == 1
        assert timing.total_cycles == timing.compute_cycles + timing.fill_drain_cycles

    def test_cycles_scale_with_batch(self, array):
        array.configure(8, 8)
        single = array.gemm_timing(m=8, n=8, batch=1)
        batched = array.gemm_timing(m=8, n=8, batch=10)
        assert batched.compute_cycles == 10 * single.compute_cycles

    def test_lower_bitwidth_needs_fewer_cycles(self, array):
        m, n = 64, 256
        array.configure(8, 8)
        wide = array.gemm_timing(m, n)
        array.configure(2, 2)
        narrow = array.gemm_timing(m, n)
        assert narrow.compute_cycles < wide.compute_cycles

    def test_buffer_access_counts_positive(self, array):
        array.configure(4, 4)
        timing = array.gemm_timing(m=32, n=64, batch=2)
        assert timing.ibuf_reads > 0
        assert timing.wbuf_reads > 0
        assert timing.obuf_writes > 0
