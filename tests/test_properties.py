"""Cross-module property-based tests (hypothesis) on the core invariants.

The invariants here are the ones the paper's argument rests on:

* bit-level decomposition is lossless for *every* operand pair at *every*
  supported bitwidth (not just the examples of Figures 6/7),
* the fusion fabric's dot products equal integer arithmetic for arbitrary
  vectors, including mixed signs and bitwidths,
* the tiling/traffic model never undercounts compulsory traffic and always
  produces tiles that fit the scratchpads,
* the cycle model never reports more than 100% utilization,
* packing operands into buffer rows and unpacking them is the identity.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.buffers import DataInfusionRegister
from repro.core.config import BitFusionConfig
from repro.core.decompose import decompose_multiply, recompose_product
from repro.core.fusion_unit import FusionUnit, fusion_config_for
from repro.isa.instructions import LoopOrder
from repro.isa.tiling import GemmWorkload, plan_tiling
from repro.sim.cycle_model import GemmCycleModel

_BITWIDTHS = (1, 2, 4, 8, 16)


def _bounds(bits: int, signed: bool = True) -> tuple[int, int]:
    if signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


class TestDecompositionProperties:
    @settings(max_examples=300)
    @given(
        a_bits=st.sampled_from((2, 4, 8, 16)),
        b_bits=st.sampled_from((2, 4, 8, 16)),
        signed=st.booleans(),
        data=st.data(),
    )
    def test_mixed_sign_decomposition_lossless(self, a_bits, b_bits, signed, data):
        a_lo, a_hi = _bounds(a_bits, signed)
        b_lo, b_hi = _bounds(b_bits, True)
        a = data.draw(st.integers(min_value=a_lo, max_value=a_hi))
        b = data.draw(st.integers(min_value=b_lo, max_value=b_hi))
        decomposition = decompose_multiply(a, b, a_bits, b_bits, a_signed=signed, b_signed=True)
        assert recompose_product(decomposition) == a * b

    @settings(max_examples=100)
    @given(
        a_bits=st.sampled_from((2, 4, 8, 16)),
        b_bits=st.sampled_from((2, 4, 8, 16)),
    )
    def test_brick_count_invariant(self, a_bits, b_bits):
        decomposition = decompose_multiply(0, 0, a_bits, b_bits)
        assert decomposition.brick_count == (a_bits // 2) * (b_bits // 2)


class TestFusionUnitProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        input_bits=st.sampled_from((2, 4, 8)),
        weight_bits=st.sampled_from((2, 4, 8)),
        data=st.data(),
    )
    def test_mixed_bitwidth_dot_products(self, input_bits, weight_bits, data):
        unit = FusionUnit()
        unit.configure(input_bits, weight_bits)
        i_lo, i_hi = _bounds(input_bits)
        w_lo, w_hi = _bounds(weight_bits)
        length = data.draw(st.integers(min_value=1, max_value=40))
        inputs = data.draw(
            st.lists(st.integers(min_value=i_lo, max_value=i_hi), min_size=length, max_size=length)
        )
        weights = data.draw(
            st.lists(st.integers(min_value=w_lo, max_value=w_hi), min_size=length, max_size=length)
        )
        assert unit.dot_product(inputs, weights) == int(
            np.dot(np.asarray(inputs), np.asarray(weights))
        )

    @given(
        input_bits=st.sampled_from(_BITWIDTHS),
        weight_bits=st.sampled_from(_BITWIDTHS),
    )
    def test_throughput_inversely_proportional_to_brick_demand(self, input_bits, weight_bits):
        config = fusion_config_for(input_bits, weight_bits)
        bricks_per_mac = config.bricks_per_fpe * config.temporal_passes
        assert config.macs_per_cycle * bricks_per_mac == 16


class TestTilingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=8192),
        n=st.integers(min_value=1, max_value=16384),
        r=st.integers(min_value=1, max_value=8192),
        input_bits=st.sampled_from(_BITWIDTHS),
        weight_bits=st.sampled_from(_BITWIDTHS),
        order=st.sampled_from(list(LoopOrder)),
    )
    def test_tiles_always_fit_buffers(self, m, n, r, input_bits, weight_bits, order):
        config = BitFusionConfig.eyeriss_matched()
        workload = GemmWorkload(
            m=m, n=n, r=r, input_bits=input_bits, weight_bits=weight_bits, output_bits=input_bits
        )
        plan = plan_tiling(workload, config, order)
        assert plan.tile_m * plan.tile_n * weight_bits <= config.wbuf_kb * 1024 * 8
        assert plan.tile_n * plan.tile_r * input_bits <= config.ibuf_kb * 1024 * 8
        assert plan.tile_m * plan.tile_r * 32 <= config.obuf_kb * 1024 * 8
        assert plan.m_tiles * plan.tile_m >= m
        assert plan.n_tiles * plan.tile_n >= n
        assert plan.r_tiles * plan.tile_r >= r

    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=4096),
        n=st.integers(min_value=1, max_value=8192),
        r=st.integers(min_value=1, max_value=4096),
        bits=st.sampled_from((2, 4, 8)),
    )
    def test_utilization_bounded(self, m, n, r, bits):
        config = BitFusionConfig.eyeriss_matched()
        workload = GemmWorkload(m=m, n=n, r=r, input_bits=bits, weight_bits=bits, output_bits=bits)
        plan = plan_tiling(workload, config)
        estimate = GemmCycleModel(config).estimate(plan)
        assert 0.0 < estimate.utilization <= 1.0
        assert estimate.total_cycles >= estimate.ideal_cycles


class TestBufferPackingProperties:
    @settings(max_examples=120)
    @given(
        bits=st.sampled_from((2, 4, 8)),
        row_bits=st.sampled_from((16, 32, 64)),
        data=st.data(),
    )
    def test_pack_unpack_identity_for_any_row_width(self, bits, row_bits, data):
        register = DataInfusionRegister(row_bits=row_bits)
        lo, hi = _bounds(bits)
        values = data.draw(
            st.lists(st.integers(min_value=lo, max_value=hi), min_size=0, max_size=64)
        )
        rows = register.pack(values, operand_bits=bits)
        assert register.unpack(rows, bits, len(values)) == values
