"""Tests for the NAS subsystem: surrogate estimator, mutations, search.

The load-bearing guarantee is exactness: the cache-composition estimator
must return results byte-identical to ``BitFusionAccelerator.evaluate`` on
any network — cold (everything simulates), warm (nothing simulates) and
partially warm — while simulating each never-before-seen layer exactly
once.  The hypothesis test pins the exact simulated/deduped/composed
accounting over randomly mutated GEMM shapes.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accelerator import BitFusionAccelerator
from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import FCLayer
from repro.dnn.network import Network
from repro.harness.runner import main
from repro.nas import Estimator, SearchSpec, mutate, run_search
from repro.nas.mutations import mutate_bits, mutate_depth, mutate_width
from repro.session import EvaluationSession, ResultCache, Workload
from repro.session.workload import load_network


def _config() -> BitFusionConfig:
    return BitFusionConfig.eyeriss_matched()


class TestEstimatorExactness:
    @pytest.mark.parametrize("name", ["LeNet-5", "Cifar-10", "LSTM"])
    def test_cold_estimate_matches_evaluate(self, name):
        config = _config()
        network = models.load(name)
        estimate = Estimator(config).estimate(network)
        reference = BitFusionAccelerator(config).evaluate(network)
        # Frozen dataclasses all the way down: == is byte-identity over
        # every field, including each per-layer record.
        assert estimate == reference

    def test_warm_estimate_is_identical_and_simulation_free(self):
        config = _config()
        network = models.load("Cifar-10")
        estimator = Estimator(config)
        cold = estimator.estimate(network)
        simulated = estimator.stats.layers_simulated
        compiled = estimator.stats.programs_compiled
        warm = estimator.estimate(network)
        assert warm == cold == BitFusionAccelerator(config).evaluate(network)
        assert estimator.stats.layers_simulated == simulated
        assert estimator.stats.programs_compiled == compiled
        assert estimator.stats.programs_reused == 1

    def test_partially_warm_estimate_matches_evaluate(self):
        config = _config()
        estimator = Estimator(config)
        base = models.load("Cifar-10")
        estimator.estimate(base)
        simulated_before = estimator.stats.layers_simulated
        mutant = mutate(base, random.Random(3))
        estimate = estimator.estimate(mutant)
        assert estimate == BitFusionAccelerator(config).evaluate(mutant)
        # A single mutation leaves most layers shared with the base — only
        # the genuinely novel ones may simulate.
        novel = estimator.stats.layers_simulated - simulated_before
        assert novel < len(list(mutant.compute_layers()))

    def test_session_warmed_cache_prices_without_simulation(self, tmp_path):
        # A report/sweep run and the estimator share the artifact store:
        # pricing the same workload afterwards is pure composition.
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache_dir=tmp_path) as session:
            session_result = session.run(workload)
        estimator = Estimator(
            workload.config,
            ResultCache(tmp_path),
            batch_size=workload.batch_size,
        )
        estimate = estimator.estimate(load_network(workload))
        assert estimator.stats.layers_simulated == 0
        assert estimator.stats.programs_compiled == 0
        assert estimate == session_result

    def test_renamed_clone_prices_through_layer_dedupe(self):
        # The content-addressed layer level is name-free: a candidate that
        # renames the network and every layer costs zero simulations.
        config = _config()
        estimator = Estimator(config)
        base = models.load("LeNet-5")
        estimator.estimate(base)
        simulated = estimator.stats.layers_simulated
        from dataclasses import replace

        clone = Network(
            "lenet-clone",
            [replace(layer, name=f"renamed-{i}") for i, layer in enumerate(base)],
        )
        estimate = estimator.estimate(clone)
        assert estimator.stats.layers_simulated == simulated
        assert estimate == BitFusionAccelerator(config).evaluate(clone)

    def test_estimate_many_dedupes_identical_candidates(self):
        config = _config()
        estimator = Estimator(config)
        network = models.load("LeNet-5")
        twin = models.load("LeNet-5")
        results = estimator.estimate_many([network, twin, network])
        assert estimator.stats.networks == 3
        assert estimator.stats.networks_deduped == 2
        assert estimator.stats.programs_compiled == 1
        assert results[0] is results[1] is results[2]

    def test_rejects_non_positive_batch_size(self):
        with pytest.raises(ValueError, match="batch size"):
            Estimator(_config(), batch_size=0)


class TestExactSimulationAccounting:
    """Only never-seen layer shapes simulate — exact counts, per batch."""

    @settings(max_examples=30, deadline=None)
    @given(
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=4, max_value=24),
                    st.integers(min_value=4, max_value=24),
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_simulated_and_deduped_counts_are_exact(self, batches):
        config = _config()
        estimator = Estimator(config)
        seen: set[tuple[int, int]] = set()
        for batch_index, shapes in enumerate(batches):
            network = Network(
                f"fc-net-{batch_index}-{shapes}",
                [
                    FCLayer(name=f"fc{i}", in_features=n, out_features=m)
                    for i, (n, m) in enumerate(shapes)
                ],
            )
            composed = estimator.stats.layers_composed
            simulated = estimator.stats.layers_simulated
            deduped = estimator.stats.deduped
            estimate = estimator.estimate(network)

            # Mirror the claim protocol: cached shapes compose, the first
            # unseen occurrence simulates, in-flight repeats defer.
            expect_composed = expect_simulated = expect_deduped = 0
            claimed: set[tuple[int, int]] = set()
            for shape in shapes:
                if shape in seen:
                    expect_composed += 1
                elif shape in claimed:
                    expect_deduped += 1
                else:
                    claimed.add(shape)
                    expect_simulated += 1
            seen |= claimed
            assert estimator.stats.layers_composed - composed == expect_composed
            assert estimator.stats.layers_simulated - simulated == expect_simulated
            assert estimator.stats.deduped - deduped == expect_deduped
            # Exactness holds regardless of which path served each layer.
            assert estimate == BitFusionAccelerator(config).evaluate(network)


class TestMutations:
    def test_mutants_are_valid_and_compile(self):
        rng = random.Random(0)
        base = models.load("ResNet-18")
        accelerator = BitFusionAccelerator(_config())
        for index in range(30):
            mutant = mutate(base, rng)
            assert len(mutant) > 0
            assert mutant.compute_layers()
            assert mutant.name.startswith("ResNet-18")
            if index < 3:  # full pipeline is slow; spot-check a few
                accelerator.evaluate(mutant)

    def test_chained_mutations_stay_valid(self):
        rng = random.Random(1)
        network = models.load("Cifar-10")
        for _ in range(20):
            network = mutate(network, rng)
            assert network.compute_layers()
        BitFusionAccelerator(_config()).evaluate(network)

    def test_mutation_is_deterministic_under_a_seed(self):
        base = models.load("Cifar-10")
        first = [mutate(base, random.Random(9)).fingerprint() for _ in range(1)]
        second = [mutate(base, random.Random(9)).fingerprint() for _ in range(1)]
        assert first == second

    def test_identical_architectures_share_names(self):
        # Content-derived names: the same mutation landing twice produces
        # fingerprint-identical candidates (shared cache entries).
        base = models.load("Cifar-10")
        a = mutate_bits(base, random.Random(4))
        b = mutate_bits(base, random.Random(4))
        assert a is not None and b is not None
        assert a.name == b.name
        assert a.fingerprint() == b.fingerprint()

    def test_operators_do_not_mutate_the_input(self):
        base = models.load("LeNet-5")
        fingerprint = base.fingerprint()
        rng = random.Random(2)
        for operator in (mutate_bits, mutate_width, mutate_depth):
            for _ in range(10):
                operator(base, rng)
        assert base.fingerprint() == fingerprint

    def test_unknown_axis_raises(self):
        with pytest.raises(ValueError, match="unknown mutation axes"):
            mutate(models.load("LeNet-5"), random.Random(0), axes=("nope",))
        with pytest.raises(ValueError, match="at least one"):
            mutate(models.load("LeNet-5"), random.Random(0), axes=())


class TestNetworkFingerprintMemo:
    def test_fingerprint_invalidates_on_add(self):
        network = Network("memo-check", [FCLayer(name="fc0")])
        before = network.fingerprint()
        assert network.fingerprint() == before  # memoized repeat
        network.add(FCLayer(name="fc1"))
        after = network.fingerprint()
        assert after != before
        rebuilt = Network("memo-check", [FCLayer(name="fc0"), FCLayer(name="fc1")])
        assert rebuilt.fingerprint() == after


class TestSearch:
    def _spec(self, **overrides) -> SearchSpec:
        payload = {
            "name": "test search",
            "base_network": "Cifar-10",
            "population": 6,
            "generations": 2,
            "seed": 11,
            "objectives": ["latency", "energy"],
        }
        payload.update(overrides)
        return SearchSpec.from_dict(payload)

    def test_search_is_deterministic(self):
        first = run_search(self._spec())
        second = run_search(self._spec())
        assert [c.fingerprint for c in first.candidates] == [
            c.fingerprint for c in second.candidates
        ]
        assert [c.objectives for c in first.frontier] == [
            c.objectives for c in second.frontier
        ]

    def test_each_fingerprint_is_priced_exactly_once(self):
        estimator = Estimator(_config())
        result = run_search(self._spec(generations=3), estimator=estimator)
        assert estimator.stats.networks == len(result.candidates)
        assert estimator.stats.networks_deduped == 0
        fingerprints = [candidate.fingerprint for candidate in result.candidates]
        assert len(fingerprints) == len(set(fingerprints))

    def test_frontier_is_nondominated_and_includes_generation_zero_base(self):
        result = run_search(self._spec())
        from repro.dse.pareto import pareto_indices

        vectors = [candidate.objectives for candidate in result.candidates]
        expected = {result.candidates[i].fingerprint for i in pareto_indices(vectors)}
        assert {c.fingerprint for c in result.frontier} == expected
        base_fingerprint = models.load("Cifar-10").fingerprint()
        assert base_fingerprint in {c.fingerprint for c in result.candidates}

    def test_area_objective_is_constant_but_reported(self):
        result = run_search(self._spec(objectives=["latency", "energy", "area"]))
        areas = {candidate.objectives[2] for candidate in result.candidates}
        assert len(areas) == 1
        assert next(iter(areas)) > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown nas spec key"):
            SearchSpec.from_dict({"base_network": "LeNet-5", "axis": []})
        with pytest.raises(ValueError, match="'base_network'"):
            SearchSpec.from_dict({"population": 4})
        with pytest.raises(ValueError, match="unknown mutation axis"):
            self._spec(axes=["widths"])
        with pytest.raises(ValueError, match="unknown objective"):
            self._spec(objectives=["latency", "speed"])
        with pytest.raises(ValueError, match="population"):
            self._spec(population=1)
        with pytest.raises(ValueError, match="generations"):
            self._spec(generations=0)
        with pytest.raises(KeyError):
            self._spec(base_network="not-a-network")

    def test_spec_accepts_zoo_aliases_and_files(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"base_network": "lenet5"}), encoding="utf-8")
        spec = SearchSpec.from_file(path)
        assert spec.base_network == "LeNet-5"
        assert spec.axes == ("width", "depth", "bits")

    def test_estimator_and_config_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            run_search(self._spec(), config=_config(), estimator=Estimator(_config()))


class TestNasCli:
    def _write_spec(self, tmp_path) -> str:
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli smoke",
                    "base_network": "LeNet-5",
                    "population": 4,
                    "generations": 2,
                    "seed": 2,
                    "objectives": ["latency", "energy"],
                }
            ),
            encoding="utf-8",
        )
        return str(path)

    def test_nas_subcommand_writes_report(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "report.md"
        assert main(["nas", spec, "--output", str(out)]) == 0
        report = out.read_text(encoding="utf-8")
        assert "NAS candidate search" in report
        assert "estimator:" in report
        assert "candidates/second:" in report
        assert "layer hit rate" in report

    def test_nas_subcommand_warm_cache_simulates_nothing(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        cache_dir = tmp_path / "cache"
        assert main(["nas", spec, "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["nas", spec, "--cache-dir", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert "0 simulated fresh" in warm
        assert ", 0 compiled" in warm
        assert "layer hit rate 100%" in warm

    def test_nas_subcommand_rejects_bad_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"population": 4}), encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["nas", str(path)])
