"""Tests for within-layer bitwidth variation (multiple blocks per layer)."""

from __future__ import annotations

import pytest

from repro.dnn.layers import ConvLayer, FCLayer, LSTMLayer, PoolLayer
from repro.isa.multiblock import (
    BitwidthRegion,
    compile_layer_with_regions,
    split_layer_by_regions,
)
from repro.sim.executor import BitFusionSimulator


@pytest.fixture
def mixed_regions() -> list[BitwidthRegion]:
    """90% of the outputs at 2-bit, a 10% outlier region at 8-bit."""
    return [
        BitwidthRegion(fraction=0.9, input_bits=2, weight_bits=2),
        BitwidthRegion(fraction=0.1, input_bits=8, weight_bits=8),
    ]


class TestBitwidthRegion:
    def test_validation(self):
        with pytest.raises(ValueError):
            BitwidthRegion(fraction=0.0, input_bits=2, weight_bits=2)
        with pytest.raises(ValueError):
            BitwidthRegion(fraction=1.5, input_bits=2, weight_bits=2)
        with pytest.raises(ValueError):
            BitwidthRegion(fraction=0.5, input_bits=3, weight_bits=2)


class TestSplitLayer:
    def test_split_preserves_output_count_and_macs(self, mixed_regions):
        layer = FCLayer(name="fc", in_features=512, out_features=1000)
        parts = split_layer_by_regions(layer, mixed_regions)
        assert sum(part.out_features for part in parts) == 1000
        assert sum(part.macs() for part in parts) == layer.macs()

    def test_split_conv_layer(self, mixed_regions):
        layer = ConvLayer(name="conv", in_channels=64, out_channels=128, in_height=14,
                          in_width=14, kernel=3, padding=1)
        parts = split_layer_by_regions(layer, mixed_regions)
        assert sum(part.out_channels for part in parts) == 128
        assert parts[0].weight_bits == 2
        assert parts[1].weight_bits == 8

    def test_split_recurrent_layer(self, mixed_regions):
        layer = LSTMLayer(name="lstm", input_size=128, hidden_size=256)
        parts = split_layer_by_regions(layer, mixed_regions)
        assert sum(part.hidden_size for part in parts) == 256

    def test_region_names_are_unique(self, mixed_regions):
        layer = FCLayer(name="fc", in_features=64, out_features=64)
        parts = split_layer_by_regions(layer, mixed_regions)
        assert len({part.name for part in parts}) == len(parts)

    def test_fractions_must_sum_to_one(self):
        layer = FCLayer(name="fc", in_features=64, out_features=64)
        with pytest.raises(ValueError):
            split_layer_by_regions(layer, [BitwidthRegion(0.5, 2, 2)])
        with pytest.raises(ValueError):
            split_layer_by_regions(layer, [])

    def test_unsupported_layer_type(self, mixed_regions):
        with pytest.raises(TypeError):
            split_layer_by_regions(PoolLayer(name="p"), mixed_regions)

    def test_too_many_regions_for_tiny_layer(self):
        layer = FCLayer(name="fc", in_features=8, out_features=2)
        regions = [BitwidthRegion(0.25, 2, 2)] * 3 + [BitwidthRegion(0.25, 8, 8)]
        with pytest.raises(ValueError):
            split_layer_by_regions(layer, regions)


class TestCompileWithRegions:
    def test_each_region_gets_its_own_setup(self, default_config, mixed_regions):
        layer = FCLayer(name="fc", in_features=1024, out_features=1024)
        blocks = compile_layer_with_regions(layer, mixed_regions, default_config)
        assert len(blocks) == 2
        assert blocks[0].block.setup.weight_bits == 2
        assert blocks[1].block.setup.weight_bits == 8

    def test_mixed_precision_beats_uniform_wide_execution(self, default_config, mixed_regions):
        """Running the 8-bit outliers separately beats running everything at 8-bit."""
        layer = ConvLayer(name="conv", in_channels=128, out_channels=256, in_height=28,
                          in_width=28, kernel=3, padding=1, input_bits=8, weight_bits=8)
        simulator = BitFusionSimulator(default_config)

        uniform_block = compile_layer_with_regions(
            layer, [BitwidthRegion(1.0, 8, 8)], default_config
        )[0]
        uniform_cycles = simulator.run_block(uniform_block).total_cycles

        mixed_blocks = compile_layer_with_regions(layer, mixed_regions, default_config)
        mixed_cycles = sum(simulator.run_block(block).total_cycles for block in mixed_blocks)

        assert mixed_cycles < uniform_cycles
        # And it cannot beat running everything at the narrow precision.
        narrow_block = compile_layer_with_regions(
            layer, [BitwidthRegion(1.0, 2, 2)], default_config
        )[0]
        assert simulator.run_block(narrow_block).total_cycles < mixed_cycles

    def test_simulated_macs_preserved_across_regions(self, default_config, mixed_regions):
        layer = FCLayer(name="fc", in_features=2048, out_features=4096)
        simulator = BitFusionSimulator(default_config)
        blocks = compile_layer_with_regions(layer, mixed_regions, default_config, batch_size=4)
        total_macs = sum(simulator.run_block(block).macs for block in blocks)
        assert total_macs == layer.macs() * 4
