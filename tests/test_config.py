"""Tests for the accelerator configuration and technology scaling."""

from __future__ import annotations

import pytest

from repro.core.config import BitFusionConfig, TechnologyNode


class TestTechnologyNode:
    def test_reference_node_has_unit_scaling(self):
        node = TechnologyNode.nm45()
        assert node.energy_scale == 1.0
        assert node.area_scale == 1.0

    def test_16nm_scaling_follows_paper(self):
        """Section V-A: 0.86x voltage and 0.42x capacitance scaling to 16 nm."""
        node = TechnologyNode.nm16()
        assert node.voltage_scale == pytest.approx(0.86)
        assert node.capacitance_scale == pytest.approx(0.42)
        assert node.energy_scale == pytest.approx(0.86**2 * 0.42)
        assert node.energy_scale < 0.35

    def test_65nm_scales_energy_up(self):
        assert TechnologyNode.nm65().energy_scale > 1.0

    def test_area_scale_is_quadratic_in_feature_size(self):
        assert TechnologyNode.nm16().area_scale == pytest.approx((16 / 45) ** 2)


class TestBitFusionConfig:
    def test_default_geometry(self):
        config = BitFusionConfig()
        assert config.fusion_units == config.rows * config.columns
        assert config.bitbricks == config.fusion_units * 16

    def test_eyeriss_matched_matches_table3(self):
        config = BitFusionConfig.eyeriss_matched()
        assert config.fusion_units == 512
        assert config.bitbricks == 8192
        assert config.frequency_mhz == 500.0
        assert config.total_sram_kb == pytest.approx(112.0)
        assert config.dram_bandwidth_bits_per_cycle == 128
        assert config.technology.name == "45nm"
        assert config.batch_size == 16

    def test_stripes_matched_replaces_all_sixteen_tiles(self):
        """Section V-B4: 512 Fusion Units per Stripes tile, 16 tiles."""
        config = BitFusionConfig.stripes_matched()
        assert config.fusion_units == 16 * 512
        assert config.frequency_mhz == 980.0

    def test_gpu_scaled_configuration(self):
        config = BitFusionConfig.gpu_scaled_16nm()
        assert config.fusion_units == 4096
        assert config.technology.name == "16nm"
        assert config.frequency_mhz == 500.0

    def test_peak_macs_per_cycle_scales_with_bitwidth(self):
        config = BitFusionConfig.eyeriss_matched()
        assert config.peak_macs_per_cycle(8, 8) == 512
        assert config.peak_macs_per_cycle(4, 4) == 2048
        assert config.peak_macs_per_cycle(2, 2) == 8192
        assert config.peak_macs_per_cycle(16, 16) == 128

    def test_peak_throughput_counts_two_ops_per_mac(self):
        config = BitFusionConfig.eyeriss_matched()
        assert config.peak_throughput_gops(8, 8) == pytest.approx(
            2 * 512 * 500e6 / 1e9
        )

    def test_cycle_time(self):
        assert BitFusionConfig(frequency_mhz=500.0).cycle_time_ns == pytest.approx(2.0)

    def test_dram_bandwidth_conversion(self):
        config = BitFusionConfig.eyeriss_matched()
        assert config.dram_bandwidth_gbps == pytest.approx(128 * 500e6 / 1e9)

    def test_with_bandwidth_returns_modified_copy(self):
        base = BitFusionConfig.eyeriss_matched()
        modified = base.with_bandwidth(512)
        assert modified.dram_bandwidth_bits_per_cycle == 512
        assert base.dram_bandwidth_bits_per_cycle == 128
        assert modified.rows == base.rows

    def test_with_batch_size_returns_modified_copy(self):
        base = BitFusionConfig.eyeriss_matched()
        assert base.with_batch_size(64).batch_size == 64
        assert base.batch_size == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows": 0},
            {"columns": -1},
            {"frequency_mhz": 0},
            {"dram_bandwidth_bits_per_cycle": 0},
            {"batch_size": 0},
            {"ibuf_kb": 0},
            {"wbuf_kb": -2},
            {"obuf_kb": 0},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            BitFusionConfig(**kwargs)
