"""Tests for the one-shot experiment runner and its command-line interface."""

from __future__ import annotations

import pytest

from repro.harness.runner import EXPERIMENTS, build_report, main, run_experiments


class TestRunExperiments:
    def test_registry_covers_every_paper_artifact(self):
        keys = {spec.key for spec in EXPERIMENTS}
        assert keys == {
            "fig01", "tab02", "tab03", "fig10", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "temporal", "isa", "ablations",
            "dse",
        }

    def test_temporal_experiment_runs_whole_networks(self):
        results = run_experiments(keys=["temporal"], benchmarks=("LeNet-5",))
        _, rendered, _ = results[0]
        assert "temporal" in rendered.lower()
        assert "LeNet-5" in rendered
        assert "geomean speedup" in rendered

    def test_run_single_experiment(self):
        results = run_experiments(keys=["fig01"])
        assert len(results) == 1
        spec, rendered, elapsed = results[0]
        assert spec.key == "fig01"
        assert "bitwidth" in rendered.lower()
        assert elapsed >= 0.0

    def test_run_with_benchmark_subset(self):
        results = run_experiments(keys=["tab02"], benchmarks=("LeNet-5",))
        _, rendered, _ = results[0]
        assert "LeNet-5" in rendered
        assert "AlexNet" not in rendered

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiments(keys=["fig99"])

    def test_platform_table_ignores_benchmark_subset(self):
        _, rendered, _ = run_experiments(keys=["tab03"], benchmarks=("LeNet-5",))[0]
        assert "Eyeriss" in rendered


class TestBuildReport:
    def test_report_contains_sections_and_code_blocks(self):
        report = build_report(keys=["fig01", "fig10"], benchmarks=("LeNet-5",))
        assert report.startswith("# Bit Fusion reproduction")
        assert "## Figure 1" in report
        assert "## Figure 10" in report
        assert "```" in report


class TestCommandLine:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "ablations" in out

    def test_report_to_stdout(self, capsys):
        assert main(["--experiments", "fig01", "--benchmarks", "LeNet-5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert (
            main(
                [
                    "--experiments",
                    "tab02",
                    "--benchmarks",
                    "LeNet-5",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        assert target.exists()
        assert "Table II" in target.read_text()
        assert "wrote report" in capsys.readouterr().out
