"""Tests for the experiment harness (one runner per paper table/figure).

Full-suite experiment runs are exercised by the benchmark harness under
``benchmarks/``; these tests run reduced benchmark subsets so the unit suite
stays fast, and check the structural and qualitative properties each figure
relies on.
"""

from __future__ import annotations

import pytest

from repro.harness import paper_data, reporting
from repro.harness.experiments import (
    ablations,
    fig01_bitwidths,
    fig10_fusion_unit,
    fig13_eyeriss,
    fig14_breakdown,
    fig15_bandwidth,
    fig16_batch,
    fig17_gpu,
    fig18_stripes,
    isa_stats,
    tab02_benchmarks,
    tab03_platforms,
)

_FAST_SUBSET = ("LeNet-5", "LSTM")


class TestReporting:
    def test_format_table_aligns_rows(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "b", "value": 12.5}]
        table = reporting.format_table(rows, title="demo")
        assert "demo" in table
        assert "name" in table and "value" in table

    def test_format_table_accepts_dataclass_rows(self):
        rows = fig01_bitwidths.run(benchmarks=("LeNet-5",))
        assert "LeNet-5" in reporting.format_table(rows)

    def test_markdown_table(self):
        markdown = reporting.markdown_table([{"a": 1, "b": "x"}])
        assert markdown.startswith("| a | b |")
        assert reporting.markdown_table([]) == ""

    def test_format_ratio(self):
        assert "paper" in reporting.format_ratio(2.0, 3.0)
        assert "n/a" in reporting.format_ratio(2.0, None)

    def test_format_table_rejects_unknown_row_type(self):
        with pytest.raises(TypeError):
            reporting.format_table([object()])


class TestFigure1AndTable2:
    def test_bitwidth_rows_cover_requested_benchmarks(self):
        rows = fig01_bitwidths.run(benchmarks=_FAST_SUBSET)
        assert [row.benchmark for row in rows] == list(_FAST_SUBSET)
        for row in rows:
            assert sum(row.mac_fraction_by_bits.values()) == pytest.approx(1.0)
            assert row.mac_op_fraction > 0.99

    def test_table2_rows_include_paper_reference(self):
        rows = tab02_benchmarks.run(benchmarks=_FAST_SUBSET)
        for row in rows:
            assert row.paper_macs_mops == paper_data.TABLE2_MACS_MOPS[row.benchmark]
            assert row.macs_mops > 0
        assert "Table II" in tab02_benchmarks.format_table(rows)


class TestTable3AndFigure10:
    def test_platform_table_covers_all_platforms(self):
        rows = tab03_platforms.run()
        platforms = {row.platform for row in rows}
        assert any("Eyeriss" in p for p in platforms)
        assert any("Stripes" in p for p in platforms)
        assert any("Titan" in p for p in platforms)
        assert sum("Bit Fusion" in p for p in platforms) == 3

    def test_fusion_unit_rows_reproduce_figure10(self):
        rows = fig10_fusion_unit.run()
        totals = {
            (row.metric, row.component): row.reduction
            for row in rows
            if row.component == "total"
        }
        assert totals[("area (um^2)", "total")] == pytest.approx(3.5, rel=0.05)
        assert totals[("power (nW)", "total")] == pytest.approx(3.2, rel=0.05)

    def test_same_area_throughput_advantage(self):
        rows = fig10_fusion_unit.run_throughput_advantage()
        assert all(row["advantage"] > 1.0 for row in rows)


class TestAcceleratorComparisons:
    def test_eyeriss_comparison_wins_everywhere(self):
        summary = fig13_eyeriss.run(benchmarks=_FAST_SUBSET)
        assert all(row.speedup > 1.0 for row in summary.rows)
        assert all(row.energy_reduction > 1.0 for row in summary.rows)
        assert summary.geomean_speedup > 1.0
        assert "Eyeriss" in fig13_eyeriss.format_table(summary)

    def test_alexnet_per_layer_groups(self):
        rows = fig13_eyeriss.run_alexnet_per_layer()
        groups = {row["layer group"] for row in rows}
        assert "conv 8/8-bit" in groups
        assert "conv 4/1-bit" in groups
        low_precision = next(row for row in rows if row["layer group"] == "conv 4/1-bit")
        full_precision = next(row for row in rows if row["layer group"] == "conv 8/8-bit")
        assert low_precision["speedup"] > full_precision["speedup"]

    def test_stripes_comparison_wins_everywhere(self):
        summary = fig18_stripes.run(benchmarks=_FAST_SUBSET)
        assert all(row.speedup >= 1.0 for row in summary.rows)
        assert summary.geomean_energy_reduction > 1.0

    def test_gpu_comparison_ordering(self):
        summary = fig17_gpu.run(benchmarks=("LeNet-5", "VGG-7"))
        assert summary.geomean_titanx_fp32 > 1.0
        assert summary.geomean_bitfusion > 1.0
        assert "Tegra" in fig17_gpu.format_table(summary)


class TestEnergyBreakdownExperiment:
    def test_breakdown_rows_for_both_platforms(self):
        rows = fig14_breakdown.run(benchmarks=("LeNet-5",))
        platforms = {row.platform for row in rows}
        assert platforms == {"bitfusion", "eyeriss"}
        for row in rows:
            total = row.compute + row.buffers + row.register_file + row.dram
            assert total == pytest.approx(1.0)
            assert row.memory_fraction > 0.5

    def test_bitfusion_has_no_register_file_energy(self):
        rows = fig14_breakdown.run(benchmarks=("LeNet-5",))
        bitfusion = next(row for row in rows if row.platform == "bitfusion")
        eyeriss = next(row for row in rows if row.platform == "eyeriss")
        assert bitfusion.register_file == 0.0
        assert eyeriss.register_file > 0.2


class TestSensitivitySweeps:
    def test_bandwidth_sweep_normalized_to_reference(self):
        rows = fig15_bandwidth.run(benchmarks=("LSTM",), bandwidths=(64, 128, 256))
        row = rows[0]
        assert row.speedup_by_bandwidth[128] == pytest.approx(1.0)
        assert row.speedup_by_bandwidth[256] > row.speedup_by_bandwidth[64]

    def test_bandwidth_sweep_requires_reference_point(self):
        with pytest.raises(ValueError):
            fig15_bandwidth.run(benchmarks=("LSTM",), bandwidths=(64, 256))

    def test_recurrent_networks_scale_with_bandwidth(self):
        rows = fig15_bandwidth.run(benchmarks=("LSTM",), bandwidths=(64, 128, 256))
        lstm = rows[0].speedup_by_bandwidth
        assert lstm[256] / lstm[128] > 1.5

    def test_batch_sweep_normalized_to_batch_one(self):
        rows = fig16_batch.run(batch_sizes=(1, 16), benchmarks=_FAST_SUBSET)
        for row in rows:
            assert row.speedup_by_batch[1] == pytest.approx(1.0)
            assert row.speedup_by_batch[16] >= 1.0

    def test_batch_sweep_requires_batch_one(self):
        with pytest.raises(ValueError):
            fig16_batch.run(batch_sizes=(4, 16))

    def test_recurrent_networks_gain_most_from_batching(self):
        rows = fig16_batch.run(batch_sizes=(1, 64), benchmarks=("LSTM", "LeNet-5"))
        gains = {row.benchmark: row.speedup_by_batch[64] for row in rows}
        assert gains["LSTM"] > gains["LeNet-5"]
        assert gains["LSTM"] > 5.0


class TestIsaStatsAndAblations:
    def test_isa_stats_rows(self):
        rows = isa_stats.run(benchmarks=_FAST_SUBSET)
        for row in rows:
            assert row.min_instructions >= 10
            assert row.max_instructions <= 100
            assert row.binary_bytes == row.total_instructions * 4

    def test_ablations_show_each_mechanism_helps(self):
        rows = ablations.run(benchmarks=("LeNet-5",))
        row = rows[0]
        assert row.fixed_8bit_slowdown > 1.5
        assert row.no_layer_fusion_slowdown >= 1.0
        assert row.no_loop_ordering_slowdown >= 1.0

    def test_ablation_geomean_summary(self):
        rows = ablations.run(benchmarks=_FAST_SUBSET)
        summary = ablations.geomean_summary(rows)
        assert summary["fixed_8bit_slowdown"] > 1.0
        assert set(summary) == {
            "no_loop_ordering_slowdown",
            "no_layer_fusion_slowdown",
            "fixed_8bit_slowdown",
            "no_loop_ordering_energy_increase",
            "no_layer_fusion_energy_increase",
            "fixed_8bit_energy_increase",
        }
