"""Tests for the data-infusion register (buffer row -> operand lanes)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.buffers import DataInfusionRegister, LaneLayout
from repro.core.fusion_unit import fusion_config_for


@pytest.fixture
def register() -> DataInfusionRegister:
    return DataInfusionRegister(row_bits=32)


class TestLaneLayout:
    def test_lanes_per_row_by_bitwidth(self, register):
        assert register.layout(2).lanes_per_row == 16
        assert register.layout(4).lanes_per_row == 8
        assert register.layout(8).lanes_per_row == 4
        assert register.layout(1).lanes_per_row == 16  # 1-bit rides a 2-bit lane
        assert register.layout(16).lanes_per_row == 4  # 16-bit moves as 8-bit halves

    def test_layout_utilization(self, register):
        layout = register.layout(8)
        assert layout.used_bits == 32
        assert layout.utilization == 1.0

    def test_rejects_unsupported_operand_width(self, register):
        with pytest.raises(ValueError):
            register.layout(3)

    def test_layout_validation(self):
        with pytest.raises(ValueError):
            LaneLayout(lane_bits=0, lanes_per_row=4, row_bits=32)
        with pytest.raises(ValueError):
            LaneLayout(lane_bits=4, lanes_per_row=0, row_bits=32)

    def test_register_validation(self):
        with pytest.raises(ValueError):
            DataInfusionRegister(row_bits=0)
        with pytest.raises(ValueError):
            DataInfusionRegister(row_bits=31)

    def test_fusion_config_layout_helpers(self, register):
        config = fusion_config_for(8, 2)
        assert register.input_layout(config).lane_bits == 8
        assert register.weight_layout(config).lane_bits == 2


class TestRowSufficiency:
    @pytest.mark.parametrize("input_bits", (1, 2, 4, 8, 16))
    @pytest.mark.parametrize("weight_bits", (1, 2, 4, 8, 16))
    def test_one_row_per_cycle_feeds_any_configuration(self, register, input_bits, weight_bits):
        """Figure 4's claim: 32-bit buffer accesses suffice for every fusion config."""
        assert register.row_feeds_fusion_unit(input_bits, weight_bits)

    def test_narrow_rows_cannot_feed_wide_configurations(self):
        narrow = DataInfusionRegister(row_bits=8)
        assert not narrow.row_feeds_fusion_unit(2, 2)  # 16 F-PEs x 2 bits = 32 > 8


class TestPackUnpack:
    def test_roundtrip_signed(self, register):
        values = [-2, -1, 0, 1, 1, 0, -2, -1]
        rows = register.pack(values, operand_bits=2)
        assert len(rows) == 1
        assert register.unpack(rows, operand_bits=2, count=len(values)) == values

    def test_roundtrip_unsigned(self, register):
        values = [0, 3, 2, 1, 3, 3]
        rows = register.pack(values, operand_bits=2, signed=False)
        assert register.unpack(rows, 2, len(values), signed=False) == values

    def test_roundtrip_eight_bit(self, register):
        values = [-128, 127, -1, 0, 5]
        rows = register.pack(values, operand_bits=8)
        assert len(rows) == 2
        assert register.unpack(rows, 8, len(values)) == values

    def test_pack_rejects_out_of_range(self, register):
        with pytest.raises(ValueError):
            register.pack([4], operand_bits=2, signed=False)
        with pytest.raises(ValueError):
            register.pack([2], operand_bits=2, signed=True)

    def test_unpack_requires_enough_rows(self, register):
        with pytest.raises(ValueError):
            register.unpack([0], operand_bits=2, count=32)
        with pytest.raises(ValueError):
            register.unpack([0], operand_bits=2, count=-1)

    @given(
        bits=st.sampled_from((2, 4, 8)),
        data=st.data(),
    )
    def test_pack_unpack_roundtrip_property(self, bits, data):
        register = DataInfusionRegister()
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        values = data.draw(
            st.lists(st.integers(min_value=lo, max_value=hi), min_size=1, max_size=40)
        )
        rows = register.pack(values, operand_bits=bits)
        assert register.unpack(rows, bits, len(values)) == values
        # Row count matches the access-count model.
        assert len(rows) == register.accesses_for_operands(len(values), bits)


class TestAccessAccounting:
    def test_access_counts(self, register):
        assert register.accesses_for_operands(0, 2) == 0
        assert register.accesses_for_operands(16, 2) == 1
        assert register.accesses_for_operands(17, 2) == 2
        assert register.accesses_for_operands(16, 8) == 4
        with pytest.raises(ValueError):
            register.accesses_for_operands(-1, 2)

    def test_access_reduction_vs_sixteen_bit(self, register):
        """Lower bitwidths proportionally reduce buffer accesses (insight 2)."""
        assert register.access_reduction_vs_full_width(2) == pytest.approx(4.0)
        assert register.access_reduction_vs_full_width(4) == pytest.approx(2.0)
        assert register.access_reduction_vs_full_width(8) == pytest.approx(1.0)
