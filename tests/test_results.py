"""Tests for the result records (LayerResult / NetworkResult / MemoryTraffic)."""

from __future__ import annotations

import pytest

from repro.energy.breakdown import EnergyBreakdown
from repro.sim.results import LayerResult, MemoryTraffic, NetworkResult


def _layer(name="layer", compute=1000, memory=500, macs=10_000, energy_j=1e-6) -> LayerResult:
    return LayerResult(
        name=name,
        macs=macs,
        input_bits=4,
        weight_bits=2,
        compute_cycles=compute,
        memory_cycles=memory,
        overhead_cycles=10,
        traffic=MemoryTraffic(dram_read_bits=1024, dram_write_bits=256, ibuf_read_bits=2048),
        energy=EnergyBreakdown(compute=energy_j / 2, dram=energy_j / 2),
        utilization=0.5,
    )


def _result(layers, batch=16, frequency=500.0, platform="bitfusion") -> NetworkResult:
    return NetworkResult(
        network_name="net",
        platform=platform,
        batch_size=batch,
        frequency_mhz=frequency,
        layers=tuple(layers),
    )


class TestMemoryTraffic:
    def test_totals(self):
        traffic = MemoryTraffic(dram_read_bits=10, dram_write_bits=5, ibuf_read_bits=3,
                                wbuf_read_bits=2, obuf_read_bits=1, obuf_write_bits=4)
        assert traffic.dram_total_bits == 15
        assert traffic.buffer_total_bits == 10

    def test_addition(self):
        a = MemoryTraffic(dram_read_bits=1, wbuf_read_bits=2)
        b = MemoryTraffic(dram_read_bits=3, obuf_write_bits=4)
        combined = a + b
        assert combined.dram_read_bits == 4
        assert combined.wbuf_read_bits == 2
        assert combined.obuf_write_bits == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MemoryTraffic(dram_read_bits=-1)


class TestLayerResult:
    def test_total_cycles_is_max_plus_overhead(self):
        layer = _layer(compute=1000, memory=500)
        assert layer.total_cycles == 1010
        assert not layer.is_memory_bound

    def test_memory_bound_detection(self):
        layer = _layer(compute=100, memory=900)
        assert layer.is_memory_bound
        assert layer.total_cycles == 910

    def test_validation(self):
        with pytest.raises(ValueError):
            _layer(macs=-1)
        with pytest.raises(ValueError):
            _layer(compute=-1)
        with pytest.raises(ValueError):
            LayerResult(name="x", macs=0, input_bits=4, weight_bits=4,
                        compute_cycles=0, memory_cycles=0, utilization=1.5)


class TestNetworkResult:
    def test_cycle_and_latency_aggregation(self):
        result = _result([_layer("a"), _layer("b")], batch=8, frequency=500.0)
        assert result.total_cycles == 2 * 1010
        assert result.batch_latency_s == pytest.approx(2020 / 500e6)
        assert result.latency_per_inference_s == pytest.approx(2020 / 500e6 / 8)
        assert result.throughput_inferences_per_s == pytest.approx(1 / result.latency_per_inference_s)

    def test_energy_aggregation(self):
        result = _result([_layer(energy_j=2e-6), _layer(energy_j=4e-6)])
        assert result.energy.total == pytest.approx(6e-6)
        assert result.energy_per_inference_j == pytest.approx(6e-6 / 16)
        assert result.average_power_w == pytest.approx(result.energy.total / result.batch_latency_s)

    def test_traffic_aggregation(self):
        result = _result([_layer(), _layer()])
        assert result.traffic.dram_read_bits == 2048
        assert result.traffic.ibuf_read_bits == 4096

    def test_speedup_and_energy_reduction(self):
        fast = _result([_layer(compute=100, memory=50)], platform="fast")
        slow = _result([_layer(compute=1000, memory=50)], platform="slow")
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(fast) < 1.0
        cheap = _result([_layer(energy_j=1e-6)], platform="cheap")
        costly = _result([_layer(energy_j=4e-6)], platform="costly")
        assert cheap.energy_reduction_over(costly) == pytest.approx(4.0)

    def test_effective_throughput(self):
        result = _result([_layer(macs=1_000_000)])
        expected = 2 * 1_000_000 / result.batch_latency_s / 1e9
        assert result.effective_throughput_gops == pytest.approx(expected)

    def test_layer_lookup(self):
        result = _result([_layer("conv1"), _layer("fc")])
        assert result.layer("fc").name == "fc"
        with pytest.raises(KeyError):
            result.layer("missing")

    def test_summary_contains_layer_names_and_totals(self):
        summary = _result([_layer("conv1")]).summary()
        assert "conv1" in summary
        assert "ms/inference" in summary

    def test_validation(self):
        with pytest.raises(ValueError):
            _result([], batch=16)
        with pytest.raises(ValueError):
            _result([_layer()], batch=0)
        with pytest.raises(ValueError):
            NetworkResult(network_name="n", platform="p", batch_size=1, frequency_mhz=0,
                          layers=(_layer(),))


class TestStatsHelpers:
    def test_geometric_mean(self):
        from repro.sim.stats import geometric_mean

        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_speedup_and_energy_helpers(self):
        from repro.sim.stats import energy_reduction, speedup

        fast = _result([_layer(compute=100)], platform="fast")
        slow = _result([_layer(compute=200)], platform="slow")
        assert speedup(fast, slow) == fast.speedup_over(slow)
        assert energy_reduction(fast, slow) == fast.energy_reduction_over(slow)

    def test_normalize(self):
        from repro.sim.stats import normalize

        values = {"a": 2.0, "b": 4.0}
        assert normalize(values, "a") == {"a": 1.0, "b": 2.0}
        with pytest.raises(KeyError):
            normalize(values, "c")
        with pytest.raises(ValueError):
            normalize({"a": 0.0, "b": 1.0}, "a")
