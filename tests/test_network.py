"""Tests for the Network container and its aggregate statistics."""

from __future__ import annotations

import pytest

from repro.dnn.layers import ActivationLayer, ConvLayer, FCLayer, PoolLayer
from repro.dnn.network import Network


@pytest.fixture
def tiny_network() -> Network:
    return Network(
        "tiny",
        [
            ConvLayer(name="conv1", in_channels=3, out_channels=8, in_height=8, in_width=8,
                      kernel=3, padding=1, input_bits=8, weight_bits=8),
            PoolLayer(name="pool1", channels=8, in_height=8, in_width=8, kernel=2, stride=2,
                      input_bits=4, weight_bits=2),
            ConvLayer(name="conv2", in_channels=8, out_channels=8, in_height=4, in_width=4,
                      kernel=3, padding=1, input_bits=4, weight_bits=2),
            FCLayer(name="fc", in_features=128, out_features=10, input_bits=4, weight_bits=2),
            ActivationLayer(name="relu", elements=10, input_bits=4, weight_bits=2),
        ],
    )


class TestContainerProtocol:
    def test_len_iteration_and_lookup(self, tiny_network):
        assert len(tiny_network) == 5
        assert [layer.name for layer in tiny_network][:2] == ["conv1", "pool1"]
        assert tiny_network["fc"].name == "fc"
        assert "conv2" in tiny_network
        assert "missing" not in tiny_network

    def test_duplicate_layer_names_rejected(self):
        net = Network("dup", [FCLayer(name="fc")])
        with pytest.raises(ValueError):
            net.add(FCLayer(name="fc"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Network("")

    def test_add_returns_network_for_chaining(self):
        net = Network("chain")
        assert net.add(FCLayer(name="a")) is net


class TestAggregateStatistics:
    def test_total_macs_counts_only_compute_layers(self, tiny_network):
        expected = sum(layer.macs() for layer in tiny_network if layer.has_gemm())
        assert tiny_network.total_macs() == expected

    def test_compute_layers_excludes_pool_and_activation(self, tiny_network):
        assert [layer.name for layer in tiny_network.compute_layers()] == [
            "conv1",
            "conv2",
            "fc",
        ]

    def test_total_operations_include_pooling_and_activation(self, tiny_network):
        assert tiny_network.total_operations() > tiny_network.total_macs()

    def test_mac_fraction_below_one_but_dominant(self, tiny_network):
        fraction = tiny_network.mac_fraction()
        assert 0.9 < fraction < 1.0

    def test_weight_totals(self, tiny_network):
        assert tiny_network.total_weight_count() == sum(
            layer.weight_count() for layer in tiny_network
        )
        assert tiny_network.total_weight_bytes() < tiny_network.total_weight_bytes_at(16)

    def test_max_bitwidths(self, tiny_network):
        assert tiny_network.max_input_bits() == 8
        assert tiny_network.max_weight_bits() == 8

    def test_summary_lists_every_layer(self, tiny_network):
        summary = tiny_network.summary()
        for layer in tiny_network:
            assert layer.name in summary


class TestBitwidthProfile:
    def test_mac_fractions_sum_to_one(self, tiny_network):
        profile = tiny_network.bitwidth_profile()
        assert sum(profile.mac_fraction.values()) == pytest.approx(1.0)

    def test_weight_fractions_sum_to_one(self, tiny_network):
        profile = tiny_network.bitwidth_profile()
        assert sum(profile.weight_fraction.values()) == pytest.approx(1.0)

    def test_macs_at_or_below_threshold(self, tiny_network):
        profile = tiny_network.bitwidth_profile()
        assert profile.macs_at_or_below(16) == pytest.approx(1.0)
        assert 0.0 < profile.macs_at_or_below(4) < 1.0

    def test_profile_keys_match_layer_bitwidths(self, tiny_network):
        profile = tiny_network.bitwidth_profile()
        assert set(profile.mac_fraction) == {(8, 8), (4, 2)}
        assert set(profile.weight_fraction) == {8, 2}

    def test_empty_network_profile(self):
        profile = Network("empty", [ActivationLayer(name="a", elements=4)]).bitwidth_profile()
        assert profile.mac_fraction == {}
        assert profile.weight_fraction == {}
