"""Chaos tests: kill-at-any-point resume, retry-once, quarantine.

The contracts under test (see ``docs/testing.md``):

* **Resume exactness** — a checkpointed run killed after *any* number of
  commits, then resumed with a fresh session over the same cache directory,
  produces byte-identical results to an uninterrupted run and performs zero
  redundant block simulations across both legs combined (hypothesis drives
  the kill point).
* **Retry-once** — a workload whose execution fails once is retried exactly
  once on a fresh inline execution; a transient fault costs the batch
  nothing and is accounted in ``stats.retries`` (and the stats footer).
* **Quarantine isolation** — a workload that fails its retry too is
  quarantined: every surviving workload still completes byte-identically to
  a fault-free serial run, and the raised
  :class:`~repro.session.engine.WorkloadExecutionError` names exactly the
  injected fingerprints (hypothesis drives the crash subset).
* **Journal robustness** — a corrupt checkpoint line (the SIGKILL
  signature) degrades to a warning and a replan, never a crash; the CLI
  smokes prove the same end to end with a real ``SIGKILL`` and
  ``sweep --resume``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from faults import (
    CapturingInlinePool,
    InjectedSimulatorFault,
    SimulatedKill,
    crash_work_units,
    faulty_simulators,
    kill_after_commits,
)
from repro.session import (
    SWEEP_CHECKPOINT_NAME,
    EvaluationSession,
    SweepCheckpoint,
    Workload,
    WorkloadExecutionError,
)
from repro.session.cache import network_result_to_dict
from repro.session.engine import execute_workload

# A small mixed batch: three genuinely distinct simulation jobs plus one
# frequency variant that shares LeNet-5's blocks (frequency only affects
# composition), so resume must also preserve cross-workload block reuse.
def _grid() -> list[Workload]:
    from repro.core.config import BitFusionConfig

    base = BitFusionConfig.eyeriss_matched(batch_size=4)
    return [
        Workload.bitfusion("LeNet-5", batch_size=4, config=base),
        Workload.bitfusion("LSTM", batch_size=4, config=base),
        Workload.bitfusion("LeNet-5", batch_size=2),
        Workload.bitfusion("LeNet-5", batch_size=4, config=base.with_frequency(250.0)),
    ]


# Crash-injection tests need every workload to own a work unit, so no two
# workloads may share block keys (a non-claimant composes without ever
# executing a unit, and an injected crash would silently never fire).
# Distinct (network, batch) pairs guarantee distinct block content.
def _distinct_grid() -> list[Workload]:
    return [
        Workload.bitfusion("LeNet-5", batch_size=4),
        Workload.bitfusion("LSTM", batch_size=4),
        Workload.bitfusion("LeNet-5", batch_size=2),
        Workload.bitfusion("LeNet-5", batch_size=1),
    ]


def _dicts(results):
    return [network_result_to_dict(result) for result in results]


@pytest.fixture(scope="module")
def serial_baseline():
    """Fault-free results for the grid, computed once per module."""
    return _dicts([execute_workload(workload) for workload in _grid()])


class TestKillPointResume:
    @settings(deadline=None, max_examples=8)
    @given(kill_after=st.integers(min_value=1, max_value=4))
    def test_resume_is_byte_identical_with_zero_redundant_work(self, kill_after):
        # hypothesis drives the kill point across every commit boundary:
        # after the 1st, 2nd, ... 4th commit (the last kill lands after the
        # final commit — resume then has nothing left to do).
        grid = _grid()
        baseline = _dicts([execute_workload(workload) for workload in grid])
        with tempfile.TemporaryDirectory() as tmp:
            cache_dir = Path(tmp) / "cache"
            journal = cache_dir / SWEEP_CHECKPOINT_NAME

            # Reference leg: uninterrupted checkpointed run in a sibling
            # directory gives the fault-free block-simulation count.
            ref_dir = Path(tmp) / "ref"
            with EvaluationSession(
                cache_dir=ref_dir, checkpoint=SweepCheckpoint(ref_dir / SWEEP_CHECKPOINT_NAME)
            ) as reference:
                assert _dicts(reference.run_many(grid)) == baseline
                fault_free_blocks = reference.stats.blocks.misses

            first = EvaluationSession(
                cache_dir=cache_dir, checkpoint=SweepCheckpoint(journal)
            )
            with kill_after_commits(kill_after) as committed:
                with pytest.raises(SimulatedKill):
                    first.run_many(grid)
                    # The last boundary kill fires after run_many would have
                    # returned only if every commit precedes the return; the
                    # grid has exactly 4 unique workloads, so it always fires.
            killed_blocks = first.stats.blocks.misses
            assert len(committed) == kill_after
            # Abandon `first` without close(): a killed process flushes
            # nothing either.  Artifact entries and journal events were
            # written per-event, which is exactly what resume relies on.

            resumed = EvaluationSession(
                cache_dir=cache_dir, checkpoint=SweepCheckpoint(journal)
            )
            with resumed:
                results = resumed.run_many(grid)
                assert _dicts(results) == baseline
                # Zero redundant simulations across both legs combined: the
                # kill lost at most in-flight (uncommitted) work, never
                # anything the first leg durably stored.
                assert killed_blocks + resumed.stats.blocks.misses == fault_free_blocks
                # The journal agrees: every unique workload completed.
                assert set(resumed.checkpoint.completed) >= {
                    workload.fingerprint() for workload in grid
                }

    def test_checkpointed_run_matches_uncheckpointed_serial(self, serial_baseline):
        # The checkpointed serial path trades the cross-workload grid merge
        # for per-workload durability; the batched executor's bit-exactness
        # contract makes the results identical anyway.
        with tempfile.TemporaryDirectory() as tmp:
            journal = Path(tmp) / "cache" / SWEEP_CHECKPOINT_NAME
            with EvaluationSession(
                cache_dir=Path(tmp) / "cache", checkpoint=SweepCheckpoint(journal)
            ) as session:
                assert _dicts(session.run_many(_grid())) == serial_baseline


class TestRetryOnce:
    def test_transient_worker_crash_retries_once_and_succeeds(self):
        grid = _distinct_grid()
        serial_baseline = _dicts([execute_workload(workload) for workload in grid])
        target = grid[1].fingerprint()
        session = EvaluationSession(jobs=2)
        session._pool = CapturingInlinePool()
        try:
            with crash_work_units([target], times=1) as crashes:
                results = session.run_many(grid)
            assert crashes == {target: 1}
            assert session.stats.retries == 1
            assert "workload retries: 1 failed execution(s) retried once" in (
                session.stats.summary()
            )
            assert _dicts(results) == serial_baseline
        finally:
            session.close()

    def test_transient_simulator_fault_retries_once_serially(self, serial_baseline):
        # Serial path, checkpointed (per-workload simulation): one injected
        # block fault fails one workload's first attempt; the retry replans
        # and succeeds.  budget=1 makes the fault transient.  'lstm1' is a
        # block name unique to the LSTM program, so only that workload sees
        # the fault.
        grid = _grid()
        with tempfile.TemporaryDirectory() as tmp:
            journal = Path(tmp) / "cache" / SWEEP_CHECKPOINT_NAME
            with EvaluationSession(
                cache_dir=Path(tmp) / "cache", checkpoint=SweepCheckpoint(journal)
            ) as session:
                with faulty_simulators(["lstm1"], budget=1) as counter:
                    results = session.run_many(grid)
                assert sum(counter.values()) == 1
                assert session.stats.retries == 1
                assert _dicts(results) == serial_baseline
                # The journal remembers the failed first attempt.
                attempts = session.checkpoint.failed_attempts(grid[1].fingerprint())
                assert len(attempts) == 1
                assert "injected fault" in attempts[0].error

    def test_fault_free_stats_carry_no_retry_line(self):
        with EvaluationSession() as session:
            session.run_many(_grid()[:1])
            assert session.stats.retries == 0
            assert "retries" not in session.stats.summary()


class TestQuarantine:
    def test_persistent_crash_quarantines_exactly_the_injected_set(self):
        grid = _distinct_grid()
        serial_baseline = _dicts([execute_workload(workload) for workload in grid])
        target = grid[1]
        session = EvaluationSession(jobs=2)
        session._pool = CapturingInlinePool()
        try:
            # times=2 kills the first attempt *and* the retry.
            with crash_work_units([target.fingerprint()], times=2) as crashes:
                with pytest.raises(WorkloadExecutionError) as excinfo:
                    session.run_many(grid)
            assert crashes == {target.fingerprint(): 2}
            assert session.stats.retries == 1
            quarantined = excinfo.value.quarantined
            assert [record.fingerprint for record in quarantined] == [
                target.fingerprint()
            ]
            assert target.label() in str(excinfo.value)
            # Every survivor completed and is byte-identical to serial.
            for workload, expected in zip(grid, serial_baseline):
                if workload.fingerprint() == target.fingerprint():
                    continue
                cached = session.cache.get(workload.fingerprint())
                if cached is None:
                    # Composable from artifacts even if the whole-result
                    # memo was not kept.
                    cached = session.run(workload)
                assert network_result_to_dict(cached) == expected
        finally:
            session.close()

    def test_crashed_claimant_recovers_through_neighbors_artifacts(self):
        # Two workloads share every block key; the *claimant* (first in
        # schedule order — equal cost, fingerprint tie-break) crashes every
        # work unit it is ever given.  The deferred neighbour composes via
        # its inline fallback (storing the shared blocks), so the
        # claimant's retry replans into pure cache hits and needs no work
        # unit at all — a crashed worker cannot quarantine a workload whose
        # artifacts a neighbour already produced.
        from repro.core.config import BitFusionConfig

        base = BitFusionConfig.eyeriss_matched(batch_size=4)
        pair = [
            Workload.bitfusion("LeNet-5", batch_size=4, config=base),
            Workload.bitfusion(
                "LeNet-5", batch_size=4, config=base.with_frequency(250.0)
            ),
        ]
        claimant = min(pair, key=lambda workload: workload.fingerprint())
        session = EvaluationSession(jobs=2)
        session._pool = CapturingInlinePool()
        try:
            with crash_work_units([claimant.fingerprint()], times=99) as crashes:
                results = session.run_many(pair)
            # The crash fired exactly once: the retry found every block
            # cached and never dispatched another unit.
            assert crashes == {claimant.fingerprint(): 1}
            assert session.stats.retries == 1
            for workload, result in zip(pair, results):
                assert network_result_to_dict(result) == network_result_to_dict(
                    execute_workload(workload)
                )
        finally:
            session.close()

    @settings(deadline=None, max_examples=8)
    @given(crashed=st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=3))
    def test_parallel_crash_subset_property(self, crashed):
        # Property: crashing any K workers quarantines exactly those
        # fingerprints and leaves every survivor byte-identical to serial.
        grid = _distinct_grid()
        baseline = _dicts([execute_workload(workload) for workload in grid])
        targets = {grid[index].fingerprint() for index in crashed}
        session = EvaluationSession(jobs=2)
        session._pool = CapturingInlinePool()
        try:
            with crash_work_units(targets, times=2):
                with pytest.raises(WorkloadExecutionError) as excinfo:
                    session.run_many(grid)
            assert {
                record.fingerprint for record in excinfo.value.quarantined
            } == targets
            for workload, expected in zip(grid, baseline):
                if workload.fingerprint() in targets:
                    continue
                result = session.run(workload)
                assert network_result_to_dict(result) == expected
        finally:
            session.close()

    def test_quarantine_is_journaled(self):
        # Serial checkpointed run; a persistent simulator fault on LSTM's
        # 'lstm1' block fails both the first attempt (batched path) and the
        # retry (inline work unit) — the journal must carry both events.
        grid = _grid()[:2]
        target = grid[1]
        with tempfile.TemporaryDirectory() as tmp:
            journal = Path(tmp) / "cache" / SWEEP_CHECKPOINT_NAME
            with EvaluationSession(
                cache_dir=Path(tmp) / "cache", checkpoint=SweepCheckpoint(journal)
            ) as session:
                with faulty_simulators(["lstm1"]):
                    with pytest.raises(WorkloadExecutionError):
                        session.run_many(grid)
            # A fresh load of the journal sees the quarantine (and the
            # journaled first-attempt failure).
            replayed = SweepCheckpoint(journal)
            assert [record.fingerprint for record in replayed.quarantined] == [
                target.fingerprint()
            ]
            assert len(replayed.failed_attempts(target.fingerprint())) == 1
            assert grid[0].fingerprint() in replayed.completed


class TestEstimatorClaimRelease:
    def test_failed_batch_releases_claims(self):
        # Regression: a raising batched simulation must release its
        # in-flight block claims, or every later estimate defers to a
        # claimant that never stored anything and dies at compose time.
        from repro.dnn import models
        from repro.nas import Estimator

        estimator = Estimator()
        network = models.load("LeNet-5")
        program = estimator._obtain_program(network, network.fingerprint())
        first_block = program.blocks[0].name
        with faulty_simulators([first_block]):
            with pytest.raises(InjectedSimulatorFault):
                estimator.estimate(network)
        # Same estimator, faults removed: must price cleanly (no
        # deferred-block RuntimeError from leaked claims).
        result = estimator.estimate(network)
        fresh = Estimator().estimate(network)
        assert network_result_to_dict(result) == network_result_to_dict(fresh)
        assert not estimator._in_flight


class TestCheckpointCorruption:
    def test_truncated_line_warns_and_replans(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "sweep-checkpoint.jsonl"
            good = {"event": "planned", "fingerprint": "abc", "label": "x"}
            done = {"event": "completed", "fingerprint": "abc"}
            path.write_text(
                json.dumps(good) + "\n" + json.dumps(done) + "\n" + '{"event": "comp',
                encoding="utf-8",
            )
            with pytest.warns(UserWarning, match="corrupt"):
                checkpoint = SweepCheckpoint(path)
            assert checkpoint.corrupt_lines == 1
            assert checkpoint.completed == frozenset({"abc"})
            # Appending after a corrupt load still works.
            checkpoint.record_planned("def", "y")
            checkpoint.close()
            replayed = SweepCheckpoint(path)
            assert "def" in replayed.planned

    def test_unknown_event_is_skipped_not_fatal(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "sweep-checkpoint.jsonl"
            path.write_text(
                json.dumps({"event": "???", "fingerprint": "abc"}) + "\n",
                encoding="utf-8",
            )
            with pytest.warns(UserWarning, match="corrupt"):
                checkpoint = SweepCheckpoint(path)
            assert checkpoint.corrupt_lines == 1
            assert checkpoint.completed == frozenset()


def _write_spec(path: Path) -> None:
    path.write_text(
        json.dumps(
            {
                "name": "fault smoke",
                "networks": ["LeNet-5", "LSTM"],
                "axes": {"bandwidth": [64, 128]},
            }
        ),
        encoding="utf-8",
    )


def _sweep_cli(args, env_extra=None, cwd=None):
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro.harness", "sweep", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or root,
    )


class TestResumeCli:
    def test_killed_sweep_resumes_with_footer_and_no_redundant_work(self, tmp_path):
        spec = tmp_path / "spec.json"
        _write_spec(spec)
        cache_dir = tmp_path / "cache"

        killed = _sweep_cli(
            [str(spec), "--cache-dir", str(cache_dir)],
            env_extra={"REPRO_SWEEP_KILL_AFTER": "2"},
        )
        assert killed.returncode == -signal.SIGKILL

        resumed = _sweep_cli(
            [str(spec), "--cache-dir", str(cache_dir), "--resume", "--jobs", "2"]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed: 2/4 points, quarantined: 0" in resumed.stdout
        assert "Pareto frontier" in resumed.stdout

        warm = _sweep_cli([str(spec), "--cache-dir", str(cache_dir), "--resume"])
        assert warm.returncode == 0, warm.stderr
        assert "resumed: 4/4 points, quarantined: 0" in warm.stdout
        # Fully resumed: nothing compiles, nothing simulates.
        assert "0 compiles (hit rate 100%)" in warm.stdout
        assert "0 block simulations (hit rate 100%)" in warm.stdout

    def test_resume_with_corrupt_journal_warns_and_completes(self, tmp_path):
        spec = tmp_path / "spec.json"
        _write_spec(spec)
        cache_dir = tmp_path / "cache"

        first = _sweep_cli([str(spec), "--cache-dir", str(cache_dir)])
        assert first.returncode == 0, first.stderr

        journal = cache_dir / SWEEP_CHECKPOINT_NAME
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "comple')  # truncated: the SIGKILL signature

        resumed = _sweep_cli(
            [str(spec), "--cache-dir", str(cache_dir), "--resume"]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "corrupt" in resumed.stderr
        assert "resumed: 4/4 points" in resumed.stdout

    def test_resume_requires_cache_dir(self, tmp_path):
        spec = tmp_path / "spec.json"
        _write_spec(spec)
        result = _sweep_cli([str(spec), "--resume"])
        assert result.returncode != 0
        assert "--resume requires --cache-dir" in result.stderr
