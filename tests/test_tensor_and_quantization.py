"""Tests for quantized tensor specs and the linear quantization utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dnn.quantization import (
    QuantizationSpec,
    clip_to_bitwidth,
    dequantize_linear,
    minimal_bitwidth,
    quantize_linear,
)
from repro.dnn.tensor import TensorSpec, random_quantized_tensor


class TestTensorSpec:
    def test_element_count_and_size(self):
        spec = TensorSpec(shape=(4, 8, 2), bits=4)
        assert spec.elements == 64
        assert spec.size_bits == 256
        assert spec.size_bytes == 32.0

    def test_signed_value_range(self):
        assert TensorSpec(shape=(1,), bits=4).value_range == (-8, 7)

    def test_unsigned_value_range(self):
        assert TensorSpec(shape=(1,), bits=4, signed=False).value_range == (0, 15)

    def test_one_bit_range(self):
        assert TensorSpec(shape=(1,), bits=1).value_range == (-1, 0)
        assert TensorSpec(shape=(1,), bits=1, signed=False).value_range == (0, 1)

    @pytest.mark.parametrize("shape", [(), (0,), (3, 0)])
    def test_rejects_bad_shapes(self, shape):
        with pytest.raises(ValueError):
            TensorSpec(shape=shape, bits=8)

    def test_rejects_unsupported_bits(self):
        with pytest.raises(ValueError):
            TensorSpec(shape=(2,), bits=3)

    def test_random_tensor_respects_range_and_shape(self, rng):
        spec = TensorSpec(shape=(10, 10), bits=2)
        values = random_quantized_tensor(spec, rng)
        assert values.shape == (10, 10)
        assert values.min() >= -2
        assert values.max() <= 1
        assert values.dtype == np.int64

    def test_random_tensor_deterministic_default(self):
        spec = TensorSpec(shape=(5,), bits=8)
        np.testing.assert_array_equal(
            random_quantized_tensor(spec), random_quantized_tensor(spec)
        )


class TestQuantizationSpec:
    def test_quantization_bounds(self):
        spec = QuantizationSpec(bits=8, scale=0.5)
        assert spec.qmin == -128
        assert spec.qmax == 127

    def test_unsigned_bounds(self):
        spec = QuantizationSpec(bits=4, scale=1.0, signed=False)
        assert spec.qmin == 0
        assert spec.qmax == 15

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QuantizationSpec(bits=5, scale=1.0)
        with pytest.raises(ValueError):
            QuantizationSpec(bits=8, scale=0.0)

    def test_from_tensor_maps_max_to_qmax(self):
        values = np.array([-1.0, 0.5, 2.0])
        spec = QuantizationSpec.from_tensor(values, bits=8)
        assert quantize_linear(values, spec).max() == 127

    def test_from_tensor_handles_all_zero_input(self):
        spec = QuantizationSpec.from_tensor(np.zeros(4), bits=8)
        assert spec.scale > 0


class TestQuantizeRoundTrip:
    def test_quantize_clips_to_range(self):
        spec = QuantizationSpec(bits=4, scale=1.0)
        values = np.array([-100.0, 0.0, 100.0])
        q = quantize_linear(values, spec)
        assert q.min() == -8
        assert q.max() == 7

    def test_dequantize_inverts_scale(self):
        spec = QuantizationSpec(bits=8, scale=0.25)
        q = np.array([4, -8, 0])
        np.testing.assert_allclose(dequantize_linear(q, spec), [1.0, -2.0, 0.0])

    @given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=32))
    def test_roundtrip_error_bounded_by_half_scale(self, values):
        values = np.asarray(values)
        spec = QuantizationSpec.from_tensor(values, bits=8)
        reconstructed = dequantize_linear(quantize_linear(values, spec), spec)
        assert np.max(np.abs(reconstructed - values)) <= spec.scale / 2 + 1e-9


class TestMinimalBitwidth:
    def test_matches_value_magnitude(self):
        assert minimal_bitwidth(np.array([0, -1])) == 1
        assert minimal_bitwidth(np.array([0, 1, -1])) == 2
        assert minimal_bitwidth(np.array([0, 1, -2])) == 2
        assert minimal_bitwidth(np.array([3])) == 4
        assert minimal_bitwidth(np.array([-9])) == 8
        assert minimal_bitwidth(np.array([200]), signed=False) == 8
        assert minimal_bitwidth(np.array([300]), signed=False) == 16

    def test_empty_tensor_uses_smallest_width(self):
        assert minimal_bitwidth(np.array([])) == 1

    def test_rejects_values_wider_than_sixteen_bits(self):
        with pytest.raises(ValueError):
            minimal_bitwidth(np.array([1 << 20]))

    @given(st.sampled_from((1, 2, 4, 8, 16)), st.data())
    def test_minimal_bitwidth_is_sufficient_property(self, bits, data):
        """Property: the reported width always represents the data losslessly."""
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        values = np.asarray(
            data.draw(st.lists(st.integers(min_value=lo, max_value=hi), min_size=1, max_size=20))
        )
        width = minimal_bitwidth(values)
        assert width <= 16
        clipped = clip_to_bitwidth(values, width)
        np.testing.assert_array_equal(clipped, values)


class TestClipToBitwidth:
    def test_saturates_out_of_range_values(self):
        values = np.array([-100, 0, 100])
        np.testing.assert_array_equal(clip_to_bitwidth(values, 4), [-8, 0, 7])

    def test_unsigned_clipping(self):
        np.testing.assert_array_equal(
            clip_to_bitwidth(np.array([-5, 3, 99]), 4, signed=False), [0, 3, 15]
        )

    def test_rejects_unsupported_width(self):
        with pytest.raises(ValueError):
            clip_to_bitwidth(np.array([1]), 5)
