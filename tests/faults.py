"""Deterministic fault injectors for chaos-testing the execution engine.

Built on the three seams :mod:`repro.session.testing` exposes (work-unit
wrapper, simulator wrapper, after-commit hook).  Everything here is
deterministic — faults target explicit workload fingerprints, block names
or commit counts, never wall-clock or randomness — so every chaos test
replays exactly, and hypothesis can drive kill points / crash sets as
ordinary strategy inputs.

The injectors:

* :class:`SimulatedKill` + :func:`kill_after_commits` — an in-process stand
  in for ``SIGKILL``: a ``BaseException`` raised from the after-commit hook,
  which by design escapes every ``except Exception`` in the session (the
  session must never catch ``BaseException``), aborting the run *between*
  durable commits exactly like a real kill, but recoverably enough for an
  in-process test to resume with a fresh session.  Real-``SIGKILL`` coverage
  rides on the ``REPRO_SWEEP_KILL_AFTER`` subprocess smokes.
* :func:`crash_work_units` — makes the work units of chosen workload
  fingerprints raise :class:`InjectedWorkerCrash` (surfacing at
  ``Future.result()``, like a died worker process), each fingerprint at most
  ``times`` times — ``times=1`` exercises retry-success, a large ``times``
  exercises quarantine.
* :func:`faulty_simulators` — wraps every resolved simulator in a
  :class:`FaultySimulator` proxy that raises :class:`InjectedSimulatorFault`
  for chosen block names.  The proxy advertises ``batched = False`` so the
  grid executor routes every block through the interceptable scalar
  ``run_block`` loop.
* :class:`CapturingInlinePool` — an in-process pool whose ``submit`` runs
  the callable immediately but re-raises any exception at ``.result()``
  time, matching real executor semantics (needed so injected worker crashes
  surface where ``BrokenProcessPool`` would).
* :func:`drop_connections` — makes the remote backend's transport raise
  :class:`InjectedConnectionDrop` for chosen worker addresses, each at most
  ``times`` times, without any real socket misbehaving — the worker daemon
  on the other end stays healthy, so the test isolates the *connection*
  fault path (dead-client marking, work-stealing redistribution, retry).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

from repro.session import testing

__all__ = [
    "CapturingInlinePool",
    "FaultySimulator",
    "InjectedConnectionDrop",
    "InjectedSimulatorFault",
    "InjectedWorkerCrash",
    "SimulatedKill",
    "crash_work_units",
    "drop_connections",
    "faulty_simulators",
    "kill_after_commits",
]


class SimulatedKill(BaseException):
    """In-process crash marker; escapes ``except Exception`` everywhere."""


class InjectedWorkerCrash(RuntimeError):
    """Models a worker process dying before it could reply."""


class InjectedSimulatorFault(RuntimeError):
    """Models a block simulation raising mid-flight."""


class InjectedConnectionDrop(ConnectionError):
    """Models a remote worker connection dying mid-exchange."""


@contextmanager
def kill_after_commits(count: int) -> Iterator[list[str]]:
    """Raise :class:`SimulatedKill` out of the ``count``-th durable commit.

    Yields the (growing) list of workload labels committed before the kill,
    so tests can assert exactly what the journal should contain.  The hook
    fires *after* the result is stored and journaled — the kill lands on the
    boundary between commits, the point a resumable sweep must survive.
    """
    if count < 1:
        raise ValueError(f"kill-after count must be >= 1, got {count}")
    committed: list[str] = []

    def hook(workload: Any, result: Any) -> None:
        committed.append(workload.label())
        if len(committed) >= count:
            raise SimulatedKill(f"simulated kill after {count} commits")

    with testing.on_commit(hook):
        yield committed


@contextmanager
def crash_work_units(
    fingerprints: Iterable[str], times: int = 1
) -> Iterator[dict[str, int]]:
    """Crash the work units of the given workload fingerprints.

    Each targeted fingerprint raises :class:`InjectedWorkerCrash` on its
    first ``times`` executions and behaves normally afterwards — so
    ``times=1`` fails the first attempt and lets the session's single retry
    succeed, while ``times=2`` (attempt + retry) forces quarantine.  Yields
    the per-fingerprint crash counter for accounting assertions.

    Only reaches in-process execution (inline pools, serial runs, retries):
    hooks do not cross real process boundaries.
    """
    targets = set(fingerprints)
    crashes: dict[str, int] = {}

    def wrapper(unit: Any, execute: Callable[[Any], Any]) -> Any:
        if unit.workload is None:  # anonymous NAS units carry no fingerprint
            return execute(unit)
        key = unit.workload.fingerprint()
        if key in targets and crashes.get(key, 0) < times:
            crashes[key] = crashes.get(key, 0) + 1
            raise InjectedWorkerCrash(f"injected worker crash for {unit.workload.label()}")
        return execute(unit)

    with testing.wrap_work_units(wrapper):
        yield crashes


class FaultySimulator:
    """Proxy simulator that raises for chosen block names.

    Wraps a real :class:`~repro.sim.executor.BitFusionSimulator`;
    ``batched = False`` forces the grid executor onto the scalar
    ``run_block`` loop where each block is individually interceptable.
    ``run_selected_blocks`` (the worker-unit entry point) goes through the
    same per-block check.  ``budget`` bounds the total number of injected
    faults (``None`` = unlimited — every matching block always raises).
    """

    batched = False

    def __init__(
        self,
        inner: Any,
        block_names: set[str],
        counter: dict[str, int],
        budget: int | None = None,
    ) -> None:
        self._inner = inner
        self._block_names = block_names
        self._counter = counter
        self._budget = budget

    def _check(self, block: Any) -> None:
        if block.name not in self._block_names:
            return
        if self._budget is not None and sum(self._counter.values()) >= self._budget:
            return
        self._counter[block.name] = self._counter.get(block.name, 0) + 1
        raise InjectedSimulatorFault(f"injected fault simulating block {block.name!r}")

    def run_block(self, block: Any) -> Any:
        self._check(block)
        return self._inner.run_block(block)

    def run_selected_blocks(self, program: Any, indices: Any) -> list[Any]:
        return [self.run_block(program.blocks[index]) for index in indices]

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


@contextmanager
def faulty_simulators(
    block_names: Iterable[str], budget: int | None = None
) -> Iterator[dict[str, int]]:
    """Make every resolved simulator raise for the given block names.

    Yields the per-block fault counter.  ``budget`` caps the total injected
    faults across all simulators resolved under the context — ``budget=1``
    models a single transient fault (the session's one retry succeeds).
    """
    names = set(block_names)
    counter: dict[str, int] = {}

    def wrapper(config: Any, simulator: Any) -> Any:
        return FaultySimulator(simulator, names, counter, budget)

    with testing.wrap_simulators(wrapper):
        yield counter


@contextmanager
def drop_connections(
    addresses: Iterable[str] | None = None, times: int = 1
) -> Iterator[dict[str, int]]:
    """Drop the remote transport for the given worker addresses.

    Each targeted address raises :class:`InjectedConnectionDrop` on its
    first ``times`` exchanges and passes traffic through afterwards;
    ``addresses=None`` targets every worker.  Yields the per-address drop
    counter.  The coordinator treats a drop exactly like a dead worker —
    the in-flight unit fails into the retry path and the client is marked
    dead — so ``times=1`` against a two-worker backend exercises the
    survivor absorbing the rest of the schedule.
    """
    targets = None if addresses is None else set(addresses)
    drops: dict[str, int] = {}

    def wrapper(address: str, unit: Any, transport: Callable[[], Any]) -> Any:
        if (targets is None or address in targets) and drops.get(address, 0) < times:
            drops[address] = drops.get(address, 0) + 1
            raise InjectedConnectionDrop(f"injected connection drop to {address}")
        return transport()

    with testing.wrap_transport(wrapper):
        yield drops


class CapturingInlinePool:
    """In-process pool with real executor error semantics.

    ``submit`` runs the callable immediately; an exception is captured and
    re-raised at ``.result()``, exactly where a real ``ProcessPoolExecutor``
    surfaces a died worker (``BrokenProcessPool``).  Accepts the
    ``shutdown`` keywords the session uses when discarding a broken pool.
    """

    class _Future:
        def __init__(self, value: Any = None, error: BaseException | None = None):
            self._value = value
            self._error = error

        def result(self) -> Any:
            if self._error is not None:
                raise self._error
            return self._value

    def submit(self, fn: Callable[..., Any], *args: Any) -> "CapturingInlinePool._Future":
        try:
            return self._Future(value=fn(*args))
        except Exception as error:  # noqa: BLE001 — captured, re-raised at .result()
            return self._Future(error=error)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        pass
