"""Tests for the wide-multiply decomposition onto 2-bit bricks (Equations 1-3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decompose import (
    SUPPORTED_BITWIDTHS,
    bricks_required,
    decompose_multiply,
    decompose_operand,
    recompose_product,
)


def _operand_range(bits: int, signed: bool) -> tuple[int, int]:
    if signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


class TestDecomposeOperand:
    @pytest.mark.parametrize("bits", SUPPORTED_BITWIDTHS)
    def test_slices_reassemble_to_value_unsigned(self, bits):
        lo, hi = _operand_range(bits, signed=False)
        for value in (lo, hi, (lo + hi) // 2, 1):
            slices = decompose_operand(value, bits, signed=False)
            assert sum(s.value << s.shift for s in slices) == value

    @pytest.mark.parametrize("bits", SUPPORTED_BITWIDTHS)
    def test_slices_reassemble_to_value_signed(self, bits):
        lo, hi = _operand_range(bits, signed=True)
        for value in (lo, hi, -1, 0, 1):
            slices = decompose_operand(value, bits, signed=True)
            assert sum(s.value << s.shift for s in slices) == value

    def test_slice_count_matches_bitwidth(self):
        for bits in SUPPORTED_BITWIDTHS:
            assert len(decompose_operand(0, bits, signed=True)) == bits // 2

    def test_only_top_slice_is_signed(self):
        slices = decompose_operand(-100, 8, signed=True)
        assert [s.signed for s in slices] == [False, False, False, True]

    def test_unsigned_slices_never_signed(self):
        slices = decompose_operand(200, 8, signed=False)
        assert all(not s.signed for s in slices)

    def test_slice_values_fit_brick_inputs(self):
        for value in (-128, -1, 0, 127):
            for s in decompose_operand(value, 8, signed=True):
                if s.signed:
                    assert -2 <= s.value <= 1
                else:
                    assert 0 <= s.value <= 3

    def test_rejects_unsupported_bitwidth(self):
        with pytest.raises(ValueError):
            decompose_operand(0, 3, signed=True)
        with pytest.raises(ValueError):
            decompose_operand(0, 32, signed=True)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            decompose_operand(200, 8, signed=True)
        with pytest.raises(ValueError):
            decompose_operand(-1, 8, signed=False)


class TestDecomposeMultiply:
    @pytest.mark.parametrize("a_bits", SUPPORTED_BITWIDTHS)
    @pytest.mark.parametrize("b_bits", SUPPORTED_BITWIDTHS)
    def test_brick_count_is_quadratic_in_bitwidth(self, a_bits, b_bits):
        decomposition = decompose_multiply(1, 1, a_bits, b_bits)
        assert decomposition.brick_count == (a_bits // 2) * (b_bits // 2)

    def test_paper_figure6_example(self):
        """The 4-bit example of Figure 6: 11 x 6 = 66 via four 2-bit multiplies."""
        decomposition = decompose_multiply(11, 6, 4, 4, a_signed=False, b_signed=False)
        assert decomposition.brick_count == 4
        assert recompose_product(decomposition) == 66
        shifts = sorted(op.shift for op in decomposition.operations)
        assert shifts == [0, 2, 2, 4]

    def test_paper_figure7_example(self):
        """The mixed 4x2-bit example of Figure 7: 15*1 + 10*2 = 35."""
        first = decompose_multiply(15, 1, 4, 2, a_signed=False, b_signed=False)
        second = decompose_multiply(10, 2, 4, 2, a_signed=False, b_signed=False)
        assert first.brick_count == 2
        assert second.brick_count == 2
        assert recompose_product(first) + recompose_product(second) == 35

    def test_expected_product_property(self):
        decomposition = decompose_multiply(-7, 13, 8, 8)
        assert decomposition.expected_product == -91


class TestRecomposeProduct:
    @pytest.mark.parametrize("a_bits", SUPPORTED_BITWIDTHS)
    @pytest.mark.parametrize("b_bits", SUPPORTED_BITWIDTHS)
    @pytest.mark.parametrize("a_signed", (False, True))
    @pytest.mark.parametrize("b_signed", (False, True))
    def test_recomposition_matches_product_at_corners(self, a_bits, b_bits, a_signed, b_signed):
        a_lo, a_hi = _operand_range(a_bits, a_signed)
        b_lo, b_hi = _operand_range(b_bits, b_signed)
        for a in {a_lo, a_hi, 0, 1, a_hi // 2}:
            for b in {b_lo, b_hi, 0, 1, b_hi // 2}:
                decomposition = decompose_multiply(
                    a, b, a_bits, b_bits, a_signed=a_signed, b_signed=b_signed
                )
                assert recompose_product(decomposition) == a * b

    @settings(max_examples=200)
    @given(
        a_bits=st.sampled_from(SUPPORTED_BITWIDTHS),
        b_bits=st.sampled_from(SUPPORTED_BITWIDTHS),
        a_signed=st.booleans(),
        b_signed=st.booleans(),
        data=st.data(),
    )
    def test_recomposition_is_lossless_property(self, a_bits, b_bits, a_signed, b_signed, data):
        """Property: decomposition onto BitBricks never loses precision."""
        a_lo, a_hi = _operand_range(a_bits, a_signed)
        b_lo, b_hi = _operand_range(b_bits, b_signed)
        a = data.draw(st.integers(min_value=a_lo, max_value=a_hi))
        b = data.draw(st.integers(min_value=b_lo, max_value=b_hi))
        decomposition = decompose_multiply(
            a, b, a_bits, b_bits, a_signed=a_signed, b_signed=b_signed
        )
        assert recompose_product(decomposition) == a * b


class TestBricksRequired:
    def test_one_bit_operands_occupy_a_full_brick(self):
        assert bricks_required(1, 1) == 1
        assert bricks_required(1, 8) == 4

    def test_matches_paper_configurations(self):
        assert bricks_required(2, 2) == 1
        assert bricks_required(8, 2) == 4
        assert bricks_required(4, 4) == 4
        assert bricks_required(8, 8) == 16
        assert bricks_required(16, 16) == 64

    def test_rejects_unsupported_widths(self):
        with pytest.raises(ValueError):
            bricks_required(3, 4)
