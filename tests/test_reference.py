"""Cross-validation tests: fusion fabric versus NumPy reference arithmetic.

These are the end-to-end correctness tests of the paper's central
mathematical claim: executing every multiply through 2-bit BitBrick
decomposition is lossless for all supported bitwidths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.layers import ConvLayer, FCLayer
from repro.dnn.reference import random_layer_data, run_conv_layer, run_fc_layer


class TestFCLayerReference:
    @pytest.mark.parametrize("bits", [(2, 2), (4, 2), (4, 4), (8, 4), (8, 8)])
    def test_fc_layer_is_bit_exact(self, bits, rng):
        input_bits, weight_bits = bits
        layer = FCLayer(
            name="fc",
            in_features=24,
            out_features=7,
            input_bits=input_bits,
            weight_bits=weight_bits,
        )
        inputs, weights = random_layer_data(layer, rng)
        comparison = run_fc_layer(layer, inputs, weights)
        assert comparison.matches
        assert comparison.max_abs_error == 0

    def test_one_bit_fc_layer(self, rng):
        layer = FCLayer(name="fc", in_features=16, out_features=4, input_bits=1, weight_bits=1)
        inputs, weights = random_layer_data(layer, rng)
        comparison = run_fc_layer(layer, inputs, weights)
        assert comparison.matches

    def test_comparison_reports_mismatch(self):
        layer = FCLayer(name="fc", in_features=4, out_features=2, input_bits=2, weight_bits=2)
        inputs = np.array([1, 1, 1, 1])
        weights = np.ones((2, 4), dtype=np.int64)
        comparison = run_fc_layer(layer, inputs, weights)
        assert comparison.matches
        # Fabricate a mismatch to check the error metric itself.
        tampered = type(comparison)(
            fabric_output=comparison.fabric_output + 3,
            reference_output=comparison.reference_output,
        )
        assert not tampered.matches
        assert tampered.max_abs_error == 3


class TestConvLayerReference:
    @pytest.mark.parametrize("bits", [(2, 2), (4, 2), (8, 2)])
    def test_conv_layer_is_bit_exact(self, bits, rng):
        input_bits, weight_bits = bits
        layer = ConvLayer(
            name="conv",
            in_channels=3,
            out_channels=4,
            in_height=6,
            in_width=6,
            kernel=3,
            stride=1,
            padding=1,
            input_bits=input_bits,
            weight_bits=weight_bits,
        )
        inputs, weights = random_layer_data(layer, rng)
        comparison = run_conv_layer(layer, inputs, weights)
        assert comparison.matches
        assert comparison.fabric_output.shape == (4, 6, 6)

    def test_strided_convolution(self, rng):
        layer = ConvLayer(
            name="conv",
            in_channels=2,
            out_channels=3,
            in_height=8,
            in_width=8,
            kernel=3,
            stride=2,
            padding=1,
            input_bits=4,
            weight_bits=4,
        )
        inputs, weights = random_layer_data(layer, rng)
        comparison = run_conv_layer(layer, inputs, weights)
        assert comparison.matches
        assert comparison.fabric_output.shape == (3, 4, 4)


class TestRandomLayerData:
    def test_respects_declared_bitwidths(self, rng):
        layer = FCLayer(name="fc", in_features=32, out_features=8, input_bits=2, weight_bits=2)
        inputs, weights = random_layer_data(layer, rng)
        assert inputs.min() >= -2 and inputs.max() <= 1
        assert weights.min() >= -2 and weights.max() <= 1

    def test_conv_shapes(self, rng):
        layer = ConvLayer(name="conv", in_channels=3, out_channels=5, in_height=7, in_width=9,
                          kernel=3, padding=1)
        inputs, weights = random_layer_data(layer, rng)
        assert inputs.shape == (3, 7, 9)
        assert weights.shape == (5, 3, 3, 3)

    def test_rejects_unsupported_layer_types(self):
        from repro.dnn.layers import PoolLayer

        with pytest.raises(TypeError):
            random_layer_data(PoolLayer(name="p"))
