"""Shared pytest fixtures for the Bit Fusion reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BitFusionConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> BitFusionConfig:
    """A small accelerator configuration that keeps functional tests fast."""
    return BitFusionConfig(
        rows=4,
        columns=4,
        frequency_mhz=500.0,
        ibuf_kb=4.0,
        wbuf_kb=8.0,
        obuf_kb=2.0,
        dram_bandwidth_bits_per_cycle=64,
        batch_size=2,
        name="test-small",
    )


@pytest.fixture
def default_config() -> BitFusionConfig:
    """The paper's Eyeriss-matched configuration (Table III)."""
    return BitFusionConfig.eyeriss_matched()
