"""Unit tests for the BitBrick 2-bit multiply element (paper Figure 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.bitbrick import (
    BitBrick,
    OPERAND_BITS,
    PRODUCT_BITS,
    decode_twos_complement,
    encode_twos_complement,
)


class TestTwosComplementHelpers:
    def test_encode_positive_value(self):
        assert encode_twos_complement(3, 4) == 0b0011

    def test_encode_negative_value(self):
        assert encode_twos_complement(-1, 4) == 0b1111
        assert encode_twos_complement(-8, 4) == 0b1000

    def test_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encode_twos_complement(8, 4)
        with pytest.raises(ValueError):
            encode_twos_complement(-9, 4)

    def test_encode_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            encode_twos_complement(0, 0)

    def test_decode_rejects_out_of_range_word(self):
        with pytest.raises(ValueError):
            decode_twos_complement(16, 4)
        with pytest.raises(ValueError):
            decode_twos_complement(-1, 4)

    @given(st.integers(min_value=1, max_value=16), st.data())
    def test_encode_decode_roundtrip(self, bits, data):
        value = data.draw(
            st.integers(min_value=-(1 << (bits - 1)), max_value=(1 << (bits - 1)) - 1)
        )
        assert decode_twos_complement(encode_twos_complement(value, bits), bits) == value


class TestBitBrickRanges:
    def test_unsigned_range(self):
        brick = BitBrick(signed_x=False, signed_y=False)
        assert brick.x_range == (0, 3)
        assert brick.y_range == (0, 3)

    def test_signed_range(self):
        brick = BitBrick(signed_x=True, signed_y=True)
        assert brick.x_range == (-2, 1)
        assert brick.y_range == (-2, 1)

    def test_mixed_sign_ranges(self):
        brick = BitBrick(signed_x=True, signed_y=False)
        assert brick.x_range == (-2, 1)
        assert brick.y_range == (0, 3)

    def test_product_range_unsigned(self):
        assert BitBrick(False, False).product_range == (0, 9)

    def test_product_range_signed(self):
        lo, hi = BitBrick(True, True).product_range
        assert lo == -2 * 1
        assert hi == 4  # (-2) * (-2)

    def test_operand_bits_constant(self):
        assert OPERAND_BITS == 2
        assert PRODUCT_BITS == 6


class TestBitBrickMultiply:
    def test_unsigned_multiply_exhaustive(self):
        brick = BitBrick(signed_x=False, signed_y=False)
        for x in range(4):
            for y in range(4):
                assert brick(x, y) == x * y

    def test_signed_multiply_exhaustive(self):
        brick = BitBrick(signed_x=True, signed_y=True)
        for x in range(-2, 2):
            for y in range(-2, 2):
                assert brick(x, y) == x * y

    def test_mixed_sign_multiply_exhaustive(self):
        brick = BitBrick(signed_x=True, signed_y=False)
        for x in range(-2, 2):
            for y in range(4):
                assert brick(x, y) == x * y

    def test_product_word_is_six_bit_twos_complement(self):
        brick = BitBrick(signed_x=True, signed_y=False)
        result = brick.multiply(-2, 3)
        assert result.product == -6
        assert result.product_word == encode_twos_complement(-6, PRODUCT_BITS)
        assert 0 <= result.product_word < (1 << PRODUCT_BITS)

    def test_every_product_fits_in_six_bits(self):
        for signed_x in (False, True):
            for signed_y in (False, True):
                brick = BitBrick(signed_x, signed_y)
                xlo, xhi = brick.x_range
                ylo, yhi = brick.y_range
                for x in range(xlo, xhi + 1):
                    for y in range(ylo, yhi + 1):
                        word = brick.multiply(x, y).product_word
                        assert 0 <= word < (1 << PRODUCT_BITS)

    def test_rejects_out_of_range_unsigned_operand(self):
        brick = BitBrick(signed_x=False, signed_y=False)
        with pytest.raises(ValueError):
            brick(4, 1)
        with pytest.raises(ValueError):
            brick(1, -1)

    def test_rejects_out_of_range_signed_operand(self):
        brick = BitBrick(signed_x=True, signed_y=True)
        with pytest.raises(ValueError):
            brick(2, 0)
        with pytest.raises(ValueError):
            brick(0, -3)

    def test_extended_operands_reported(self):
        result = BitBrick(True, True).multiply(-2, -1)
        assert result.x_extended == -2
        assert result.y_extended == -1
