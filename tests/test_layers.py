"""Tests for the layer IR: geometry, MAC counts and GEMM lowering."""

from __future__ import annotations

import pytest

from repro.dnn.layers import (
    ActivationLayer,
    ConvLayer,
    FCLayer,
    GemmShape,
    LSTMLayer,
    PoolLayer,
    RNNLayer,
)


class TestGemmShape:
    def test_mac_count(self):
        assert GemmShape(m=4, n=8, repeats=3).macs == 96


class TestConvLayer:
    def test_output_geometry_with_padding(self):
        layer = ConvLayer(name="c", in_channels=3, out_channels=8, in_height=32, in_width=32,
                          kernel=3, stride=1, padding=1)
        assert layer.out_height == 32
        assert layer.out_width == 32

    def test_output_geometry_with_stride(self):
        layer = ConvLayer(name="c", in_channels=3, out_channels=8, in_height=224, in_width=224,
                          kernel=7, stride=2, padding=3)
        assert layer.out_height == 112

    def test_gemm_shape_and_macs(self):
        layer = ConvLayer(name="c", in_channels=16, out_channels=32, in_height=8, in_width=8,
                          kernel=3, stride=1, padding=1)
        shape = layer.gemm_shape()
        assert shape.m == 32
        assert shape.n == 16 * 9
        assert shape.repeats == 64
        assert layer.macs() == 32 * 144 * 64

    def test_grouped_convolution(self):
        layer = ConvLayer(name="c", in_channels=16, out_channels=32, in_height=8, in_width=8,
                          kernel=3, padding=1, groups=4)
        assert layer.weight_count() == 32 * 4 * 9
        assert layer.gemm_shape().n == 4 * 9

    def test_weight_and_activation_footprints(self):
        layer = ConvLayer(name="c", in_channels=4, out_channels=8, in_height=10, in_width=10,
                          kernel=3, padding=1, weight_bits=2, input_bits=4, output_bits=4)
        assert layer.weight_count() == 8 * 4 * 9
        assert layer.weight_bits_total() == layer.weight_count() * 2
        assert layer.input_elements() == 400
        assert layer.output_elements() == 800
        assert layer.input_bits_total() == 1600

    def test_rejects_invalid_geometry(self):
        with pytest.raises(ValueError):
            ConvLayer(name="c", in_channels=3, out_channels=8, in_height=2, in_width=2,
                      kernel=5, stride=1, padding=0)
        with pytest.raises(ValueError):
            ConvLayer(name="c", in_channels=3, out_channels=8, groups=2)
        with pytest.raises(ValueError):
            ConvLayer(name="c", padding=-1)
        with pytest.raises(ValueError):
            ConvLayer(name="c", stride=0)

    def test_rejects_invalid_bitwidths(self):
        with pytest.raises(ValueError):
            ConvLayer(name="c", input_bits=3)
        with pytest.raises(ValueError):
            ConvLayer(name="c", weight_bits=5)

    def test_kind_and_flags(self):
        layer = ConvLayer(name="c")
        assert layer.kind == "conv"
        assert layer.has_gemm()
        assert layer.has_weights
        assert layer.is_compute


class TestFCLayer:
    def test_gemm_shape(self):
        layer = FCLayer(name="fc", in_features=128, out_features=64)
        assert layer.gemm_shape() == GemmShape(m=64, n=128, repeats=1)
        assert layer.macs() == 8192
        assert layer.weight_count() == 8192

    def test_rejects_invalid_features(self):
        with pytest.raises(ValueError):
            FCLayer(name="fc", in_features=0)


class TestPoolLayer:
    def test_geometry_and_comparisons(self):
        layer = PoolLayer(name="p", channels=8, in_height=8, in_width=8, kernel=2, stride=2)
        assert layer.out_height == 4
        assert layer.output_elements() == 8 * 16
        assert layer.comparisons() == 8 * 16 * 3
        assert not layer.has_gemm()
        assert layer.macs() == 0

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            PoolLayer(name="p", mode="median")

    def test_gemm_shape_raises(self):
        with pytest.raises(ValueError):
            PoolLayer(name="p").gemm_shape()


class TestActivationLayer:
    def test_elements_and_flags(self):
        layer = ActivationLayer(name="a", elements=100, function="relu")
        assert layer.input_elements() == 100
        assert layer.output_elements() == 100
        assert not layer.has_gemm()
        assert not layer.has_weights

    def test_rejects_unknown_function(self):
        with pytest.raises(ValueError):
            ActivationLayer(name="a", function="gelu")


class TestRecurrentLayers:
    def test_lstm_has_four_gates(self):
        layer = LSTMLayer(name="l", input_size=64, hidden_size=32, timesteps=5)
        shape = layer.gemm_shape()
        assert shape.m == 4 * 32
        assert shape.n == 96
        assert shape.repeats == 5
        assert layer.weight_count() == 4 * 32 * 96

    def test_rnn_has_single_gate(self):
        layer = RNNLayer(name="r", input_size=64, hidden_size=32, timesteps=3)
        assert layer.gemm_shape().m == 32
        assert layer.weight_count() == 32 * 96

    def test_lstm_macs_are_four_times_rnn(self):
        lstm = LSTMLayer(name="l", input_size=64, hidden_size=64, timesteps=1)
        rnn = RNNLayer(name="r", input_size=64, hidden_size=64, timesteps=1)
        assert lstm.macs() == 4 * rnn.macs()

    def test_recurrent_io_footprints(self):
        layer = RNNLayer(name="r", input_size=10, hidden_size=20, timesteps=7)
        assert layer.input_elements() == 70
        assert layer.output_elements() == 140

    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            LSTMLayer(name="l", input_size=0)
        with pytest.raises(ValueError):
            RNNLayer(name="r", timesteps=0)
