"""Tests for the NumPy reference layer arithmetic (repro.dnn.functional)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.functional import (
    ACCUMULATOR_BITS,
    avg_pool2d,
    check_accumulator_range,
    conv2d,
    conv2d_gemm,
    fully_connected,
    im2col,
    lstm_cell,
    max_pool2d,
    relu,
    rnn_cell,
)


class TestIm2col:
    def test_shape(self, rng):
        inputs = rng.integers(-4, 4, size=(3, 8, 8))
        columns = im2col(inputs, kernel=3, stride=1, padding=1)
        assert columns.shape == (27, 64)

    def test_identity_kernel_one(self, rng):
        inputs = rng.integers(-4, 4, size=(2, 4, 4))
        columns = im2col(inputs, kernel=1)
        np.testing.assert_array_equal(columns, inputs.reshape(2, -1))

    def test_rejects_empty_output(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 2, 2)), kernel=5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 4, 4)), kernel=0)
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 4, 4)), kernel=2, padding=-1)
        with pytest.raises(ValueError):
            im2col(np.zeros((4, 4)), kernel=2)


class TestConv2d:
    def test_matches_manual_small_case(self):
        inputs = np.arange(16).reshape(1, 4, 4)
        weights = np.ones((1, 1, 2, 2), dtype=np.int64)
        out = conv2d(inputs, weights, stride=1, padding=0)
        assert out.shape == (1, 3, 3)
        assert out[0, 0, 0] == 0 + 1 + 4 + 5

    def test_stride_and_padding(self, rng):
        inputs = rng.integers(-8, 8, size=(3, 9, 9))
        weights = rng.integers(-2, 2, size=(4, 3, 3, 3))
        out = conv2d(inputs, weights, stride=2, padding=1)
        assert out.shape == (4, 5, 5)

    def test_gemm_lowering_matches_direct_convolution(self, rng):
        inputs = rng.integers(-8, 8, size=(3, 6, 6))
        weights = rng.integers(-8, 8, size=(5, 3, 3, 3))
        weight_matrix, columns = conv2d_gemm(inputs, weights, stride=1, padding=1)
        direct = conv2d(inputs, weights, stride=1, padding=1)
        np.testing.assert_array_equal((weight_matrix @ columns).reshape(direct.shape), direct)

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((2, 4, 4)), np.zeros((1, 3, 3, 3)))

    def test_rejects_non_square_kernel(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((1, 4, 4)), np.zeros((1, 1, 2, 3)))


class TestFullyConnected:
    def test_matches_numpy(self, rng):
        weights = rng.integers(-8, 8, size=(10, 20))
        inputs = rng.integers(-8, 8, size=20)
        np.testing.assert_array_equal(fully_connected(inputs, weights), weights @ inputs)

    def test_batched_inputs(self, rng):
        weights = rng.integers(-8, 8, size=(10, 20))
        inputs = rng.integers(-8, 8, size=(20, 5))
        assert fully_connected(inputs, weights).shape == (10, 5)

    def test_bias_addition(self, rng):
        weights = rng.integers(-8, 8, size=(4, 6))
        inputs = rng.integers(-8, 8, size=6)
        bias = np.array([1, 2, 3, 4])
        np.testing.assert_array_equal(
            fully_connected(inputs, weights, bias), weights @ inputs + bias
        )

    def test_rejects_mismatched_bias(self):
        with pytest.raises(ValueError):
            fully_connected(np.zeros(6), np.zeros((4, 6)), bias=np.zeros(5))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            fully_connected(np.zeros(5), np.zeros((4, 6)))


class TestPoolingAndActivation:
    def test_max_pool(self):
        inputs = np.arange(16).reshape(1, 4, 4)
        out = max_pool2d(inputs, kernel=2)
        np.testing.assert_array_equal(out[0], [[5, 7], [13, 15]])

    def test_avg_pool_uses_integer_division(self):
        inputs = np.array([[[1, 2], [3, 5]]])
        out = avg_pool2d(inputs, kernel=2)
        assert out[0, 0, 0] == (1 + 2 + 3 + 5) // 4

    def test_pool_with_explicit_stride(self, rng):
        inputs = rng.integers(0, 8, size=(2, 6, 6))
        assert max_pool2d(inputs, kernel=3, stride=3).shape == (2, 2, 2)

    def test_pool_rejects_empty_output(self):
        with pytest.raises(ValueError):
            max_pool2d(np.zeros((1, 2, 2)), kernel=4)

    def test_relu_clamps_negative_values(self):
        np.testing.assert_array_equal(relu(np.array([-3, 0, 5])), [0, 0, 5])


class TestRecurrentCells:
    def test_lstm_cell_shapes_and_ranges(self, rng):
        hidden_size = 16
        inputs = rng.integers(-8, 8, size=8)
        hidden = rng.integers(-8, 8, size=hidden_size)
        weights = rng.integers(-8, 8, size=(4 * hidden_size, 8 + hidden_size))
        new_hidden, new_cell = lstm_cell(inputs, hidden, np.zeros(hidden_size), weights)
        assert new_hidden.shape == (hidden_size,)
        assert new_cell.shape == (hidden_size,)
        assert np.all(np.abs(new_hidden) <= 1.0)

    def test_lstm_cell_rejects_bad_weight_shape(self, rng):
        with pytest.raises(ValueError):
            lstm_cell(np.zeros(4), np.zeros(4), np.zeros(4), np.zeros((4, 8)))

    def test_rnn_cell_is_tanh_bounded(self, rng):
        hidden = rng.integers(-8, 8, size=12)
        inputs = rng.integers(-8, 8, size=6)
        weights = rng.integers(-8, 8, size=(12, 18))
        out = rnn_cell(inputs, hidden, weights)
        assert out.shape == (12,)
        assert np.all(np.abs(out) <= 1.0)

    def test_rnn_cell_rejects_bad_weight_shape(self):
        with pytest.raises(ValueError):
            rnn_cell(np.zeros(4), np.zeros(4), np.zeros((4, 9)))


class TestAccumulatorRange:
    def test_accepts_values_in_range(self):
        check_accumulator_range(np.array([0, 2**30, -(2**30)]))

    def test_rejects_overflowing_values(self):
        with pytest.raises(OverflowError):
            check_accumulator_range(np.array([2**31]))
        with pytest.raises(OverflowError):
            check_accumulator_range(np.array([-(2**31) - 1]))

    def test_empty_input_is_fine(self):
        check_accumulator_range(np.array([]))

    def test_default_width_is_32(self):
        assert ACCUMULATOR_BITS == 32
