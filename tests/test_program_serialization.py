"""Tests for Program serialization and the staged pipeline's core invariant.

The three guarantees the serializable-program refactor rests on:

* a compiled ``Program`` round-trips through its JSON payload with every
  instruction, layer, tiling plan and fusion annotation intact,
* program and block fingerprints are stable across processes (they key the
  shared on-disk artifact cache), and
* a ``NetworkResult`` produced by the staged compile → simulate-blocks →
  compose pipeline — including one whose program came back from disk — is
  byte-identical to the monolithic ``evaluate()`` path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import layer_from_dict, layer_to_dict
from repro.isa.compiler import FusionCompiler
from repro.isa.program import CompiledBlock, Program
from repro.session import (
    EvaluationSession,
    ResultCache,
    Workload,
    compile_program,
    execute_workload,
    program_cache_key,
)
from repro.session.cache import network_result_to_dict
from repro.session.engine import WorkUnit, execute_work_unit

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _compile(name: str, batch_size: int = 4) -> Program:
    network = models.load(name)
    compiler = FusionCompiler(BitFusionConfig.eyeriss_matched(batch_size=batch_size))
    return compiler.compile(network, batch_size=batch_size)


class TestLayerSerialization:
    @pytest.mark.parametrize("benchmark_name", ["LeNet-5", "LSTM", "AlexNet", "Cifar-10"])
    def test_every_layer_round_trips(self, benchmark_name):
        for layer in models.load(benchmark_name):
            payload = json.loads(json.dumps(layer_to_dict(layer)))
            assert layer_from_dict(payload) == layer

    def test_unknown_layer_type_rejected(self):
        with pytest.raises(ValueError, match="unknown layer type"):
            layer_from_dict({"type": "HologramLayer", "name": "x"})

    def test_recurrent_gates_are_recomputed_not_trusted(self):
        lstm = next(iter(models.load("LSTM")))
        payload = layer_to_dict(lstm)
        payload["gates"] = 99  # derived field: must be ignored on rebuild
        assert layer_from_dict(payload).gates == lstm.gates


class TestProgramSerialization:
    @pytest.mark.parametrize("benchmark_name", ["LeNet-5", "LSTM", "SVHN"])
    def test_round_trip_equality(self, benchmark_name):
        program = _compile(benchmark_name)
        payload = json.loads(json.dumps(program.to_dict(), sort_keys=True))
        restored = Program.from_dict(payload)
        assert restored.network_name == program.network_name
        assert len(restored) == len(program)
        for original, rebuilt in zip(program, restored):
            assert rebuilt.block.instructions == original.block.instructions
            assert rebuilt.layer == original.layer
            assert rebuilt.tiling == original.tiling
            assert rebuilt.loop_order == original.loop_order
            assert rebuilt.fused_layers == original.fused_layers
        assert restored.to_dict() == program.to_dict()

    def test_fingerprint_survives_round_trip(self):
        program = _compile("LeNet-5")
        restored = Program.from_dict(json.loads(json.dumps(program.to_dict())))
        assert restored.fingerprint() == program.fingerprint()
        for original, rebuilt in zip(program, restored):
            assert rebuilt.fingerprint() == original.fingerprint()

    def test_fingerprint_sees_content_changes(self):
        base = _compile("LeNet-5", batch_size=4)
        other_batch = _compile("LeNet-5", batch_size=8)
        assert base.fingerprint() != other_batch.fingerprint()

    def test_corrupted_payload_fails_validation(self):
        program = _compile("LeNet-5")
        payload = program.to_dict()
        # Truncate the first block's image so setup/block-end framing breaks.
        payload["blocks"][0]["block"]["image"] = payload["blocks"][0]["block"]["image"][:8]
        with pytest.raises(ValueError):
            Program.from_dict(payload)

    def test_fingerprint_stable_across_processes(self):
        program = _compile("LeNet-5")
        code = (
            "from repro.dnn import models; "
            "from repro.core.config import BitFusionConfig; "
            "from repro.isa.compiler import FusionCompiler; "
            "compiler = FusionCompiler(BitFusionConfig.eyeriss_matched(batch_size=4)); "
            "print(compiler.compile(models.load('LeNet-5'), batch_size=4).fingerprint())"
        )
        env = {**os.environ, "PYTHONPATH": _SRC, "PYTHONHASHSEED": "random"}
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert outputs == {program.fingerprint()}


class TestStagedPipelineEquivalence:
    @pytest.mark.parametrize(
        "workload",
        [
            Workload.bitfusion("LeNet-5", batch_size=4),
            Workload.bitfusion("LSTM", batch_size=4),
            Workload.bitfusion("LeNet-5", batch_size=4, enable_layer_fusion=False),
            Workload.bitfusion("LeNet-5", batch_size=4, enable_loop_ordering=False),
            Workload.bitfusion("LeNet-5", batch_size=4, fixed_bits=8),
            Workload.eyeriss("LeNet-5", batch_size=4),
            Workload.stripes("LSTM", batch_size=4),
            Workload.temporal("LeNet-5", batch_size=4),
        ],
        ids=lambda w: f"{w.platform}-{w.network}-b{w.batch_size}",
    )
    def test_staged_result_is_byte_identical_to_monolithic(self, workload):
        staged = EvaluationSession().run(workload)
        monolithic = execute_workload(workload)
        assert network_result_to_dict(staged) == network_result_to_dict(monolithic)

    def test_work_unit_blocks_are_byte_identical_to_monolithic(self):
        # A worker simulating blocks from the serialized program payload must
        # reproduce the monolithic per-layer results bit for bit.
        workload = Workload.bitfusion("LSTM", batch_size=4)
        program = compile_program(workload)
        unit = WorkUnit(
            workload=workload,
            program_payload=program.to_dict(),
            simulate_indices=tuple(range(len(program))),
        )
        reply = execute_work_unit(unit)
        assert reply.error is None
        assert [index for index, _ in reply.layers] == list(range(len(program)))
        monolithic = execute_workload(workload)
        assert [layer.name for _, layer in reply.layers] == [
            layer.name for layer in monolithic.layers
        ]
        assert tuple(layer for _, layer in reply.layers) == monolithic.layers

    def test_disk_restored_program_simulates_byte_identical(self, tmp_path):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        monolithic = execute_workload(workload)
        # The legacy json layout is forced so block records can be deleted
        # per-file below; the pack-store path is covered in
        # test_pack_store.py.
        with EvaluationSession(cache=ResultCache(tmp_path, layout="json")) as first:
            first.run(workload)
        # A fresh session restores the compiled program from disk but must
        # re-simulate every block: same result, bit for bit.
        with EvaluationSession(cache=ResultCache(tmp_path, layout="json")) as second:
            second.cache.clear_memory()
            for path in tmp_path.glob("*.json"):
                entry = path.read_text(encoding="utf-8")
                # Drop both cache levels of the simulated-block records (the
                # content-addressed layer entries would otherwise serve the
                # blocks right back through the fallback).
                if '"kind": "layer_result"' in entry or '"kind": "layer"' in entry:
                    path.unlink()
            restored = second.run(workload)
        assert second.stats.programs.hits == 1
        assert second.stats.blocks.misses > 0
        assert network_result_to_dict(restored) == network_result_to_dict(monolithic)

    def test_program_cache_key_ignores_simulation_only_parameters(self):
        base = Workload.bitfusion("LeNet-5", batch_size=4)
        bandwidth = Workload.bitfusion(
            "LeNet-5",
            batch_size=4,
            config=BitFusionConfig.eyeriss_matched(
                bandwidth_bits_per_cycle=512, batch_size=4
            ),
        )
        assert base.fingerprint() != bandwidth.fingerprint()
        assert program_cache_key(base) == program_cache_key(bandwidth)
        # But anything the compiler reads does change the key.
        other_batch = Workload.bitfusion("LeNet-5", batch_size=8)
        no_fusion = Workload.bitfusion("LeNet-5", batch_size=4, enable_layer_fusion=False)
        assert program_cache_key(base) != program_cache_key(other_batch)
        assert program_cache_key(base) != program_cache_key(no_fusion)

    def test_compiled_block_from_dict_accepts_own_output(self):
        program = _compile("LeNet-5")
        for compiled in program:
            assert CompiledBlock.from_dict(compiled.to_dict()).to_dict() == compiled.to_dict()

    def test_compile_program_rejects_non_bitfusion(self):
        with pytest.raises(ValueError, match="bitfusion"):
            compile_program(Workload.eyeriss("LeNet-5"))
