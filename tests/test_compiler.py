"""Tests for the Fusion-ISA compiler (layer and network lowering)."""

from __future__ import annotations

import pytest

from repro.dnn import models
from repro.dnn.layers import ActivationLayer, ConvLayer, FCLayer, LSTMLayer, PoolLayer, RNNLayer
from repro.dnn.network import Network
from repro.isa.compiler import FusionCompiler, compile_layer, compile_network
from repro.isa.instructions import Compute, ComputeFn, LdMem, Loop, ScratchpadType, StMem


@pytest.fixture
def compiler(default_config) -> FusionCompiler:
    return FusionCompiler(default_config)


class TestGemmWorkloadLowering:
    def test_batch_folds_into_r(self, compiler):
        layer = FCLayer(name="fc", in_features=64, out_features=32)
        workload = compiler.gemm_workload(layer, batch_size=4)
        assert workload.r == 4
        assert workload.m == 32
        assert workload.n == 64

    def test_conv_repeats_are_spatial_positions(self, compiler):
        layer = ConvLayer(name="c", in_channels=3, out_channels=8, in_height=8, in_width=8,
                          kernel=3, padding=1)
        workload = compiler.gemm_workload(layer, batch_size=2)
        assert workload.r == 64 * 2

    def test_default_batch_comes_from_config(self, compiler, default_config):
        layer = FCLayer(name="fc", in_features=8, out_features=8)
        assert compiler.gemm_workload(layer).r == default_config.batch_size

    def test_rejects_non_gemm_layer(self, compiler):
        with pytest.raises(ValueError):
            compiler.gemm_workload(PoolLayer(name="p"))

    def test_rejects_bad_batch(self, compiler):
        with pytest.raises(ValueError):
            compiler.gemm_workload(FCLayer(name="fc"), batch_size=0)


class TestBlockStructure:
    def test_block_starts_with_setup_matching_layer_bits(self, compiler):
        layer = FCLayer(name="fc", in_features=64, out_features=32, input_bits=4, weight_bits=1)
        compiled = compiler.compile_compute_layer(layer)
        assert compiled.block.setup.input_bits == 4
        assert compiled.block.setup.weight_bits == 1

    def test_block_contains_memory_and_compute_instructions(self, compiler):
        layer = ConvLayer(name="c", in_channels=16, out_channels=32, in_height=14, in_width=14,
                          kernel=3, padding=1, input_bits=2, weight_bits=2)
        compiled = compiler.compile_compute_layer(layer)
        mnemonics = {instruction.mnemonic for instruction in compiled.block}
        assert {"setup", "loop", "gen-addr", "ld-mem", "st-mem", "rd-buf", "wr-buf",
                "compute", "block-end"} <= mnemonics

    def test_conv_blocks_express_kernel_walk(self, compiler):
        layer = ConvLayer(name="c", in_channels=8, out_channels=8, in_height=8, in_width=8,
                          kernel=5, padding=2)
        compiled = compiler.compile_compute_layer(layer)
        kernel_loops = [
            loop for loop in compiled.block.loops_at_level(1) if loop.iterations == 5
        ]
        assert len(kernel_loops) >= 2

    def test_recurrent_blocks_have_gate_loop(self, compiler):
        layer = LSTMLayer(name="lstm", input_size=64, hidden_size=64, input_bits=4, weight_bits=4)
        compiled = compiler.compile_compute_layer(layer)
        assert any(loop.iterations == 4 for loop in compiled.block.loops_at_level(1))
        rnn = RNNLayer(name="rnn", input_size=64, hidden_size=64)
        rnn_block = compiler.compile_compute_layer(rnn)
        assert len(rnn_block.block) > 0

    def test_instruction_counts_in_paper_range(self, compiler):
        """Section IV-A: a few tens of instructions per block."""
        for layer in (
            FCLayer(name="fc", in_features=1024, out_features=1024),
            ConvLayer(name="c", in_channels=64, out_channels=64, in_height=28, in_width=28,
                      kernel=3, padding=1),
            LSTMLayer(name="l", input_size=512, hidden_size=512),
        ):
            compiled = compiler.compile_compute_layer(layer)
            assert 20 <= len(compiled.block) <= 90

    def test_memory_loops_iterate_over_tiles(self, compiler):
        layer = FCLayer(name="fc", in_features=8192, out_features=8192,
                        input_bits=8, weight_bits=8)
        compiled = compiler.compile_compute_layer(layer)
        outer_loops = compiled.block.loops_at_level(0)
        trip_product = 1
        for loop in outer_loops:
            trip_product *= loop.iterations
        assert trip_product >= compiled.tiling.tile_count

    def test_ld_mem_words_match_tile_sizes(self, compiler):
        layer = FCLayer(name="fc", in_features=256, out_features=128, input_bits=8, weight_bits=8)
        compiled = compiler.compile_compute_layer(layer)
        loads = [i for i in compiled.block if isinstance(i, LdMem)]
        by_target = {load.scratchpad: load.num_words for load in loads}
        assert by_target[ScratchpadType.WBUF] == min(
            compiled.tiling.tile_m * compiled.tiling.tile_n, (1 << 16) - 1
        )


class TestAuxiliaryLayerCompilation:
    def test_pool_layer_compiles_to_max_block(self, compiler):
        layer = PoolLayer(name="p", channels=8, in_height=8, in_width=8, kernel=2, stride=2)
        compiled = compiler.compile_auxiliary_layer(layer)
        fns = [i.fn for i in compiled.block if isinstance(i, Compute)]
        assert fns == [ComputeFn.MAX]
        assert compiled.layer is layer

    def test_avg_pool_uses_add(self, compiler):
        layer = PoolLayer(name="p", channels=8, in_height=8, in_width=8, kernel=2, stride=2,
                          mode="avg")
        compiled = compiler.compile_auxiliary_layer(layer)
        assert any(i.fn is ComputeFn.ADD for i in compiled.block if isinstance(i, Compute))

    def test_activation_layer_compiles_to_activation_block(self, compiler):
        layer = ActivationLayer(name="a", elements=256)
        compiled = compiler.compile_auxiliary_layer(layer)
        assert any(i.fn is ComputeFn.ACTIVATION for i in compiled.block if isinstance(i, Compute))

    def test_rejects_compute_layer(self, compiler):
        with pytest.raises(ValueError):
            compiler.compile_auxiliary_layer(FCLayer(name="fc"))


class TestNetworkCompilation:
    def test_fused_network_has_fewer_blocks_than_layers(self, default_config):
        network = models.load("LeNet-5")
        program = compile_network(network, default_config)
        assert len(program) < len(network)
        assert any(compiled.is_fused for compiled in program)

    def test_unfused_network_has_block_per_layer(self, default_config):
        network = models.load("LeNet-5")
        compiler = FusionCompiler(default_config, enable_layer_fusion=False)
        program = compiler.compile(network)
        assert len(program) == len(network)

    def test_fused_block_output_traffic_shrinks(self, default_config):
        network = Network(
            "conv-pool",
            [
                ConvLayer(name="conv", in_channels=8, out_channels=16, in_height=16, in_width=16,
                          kernel=3, padding=1, input_bits=4, weight_bits=2, output_bits=4),
                PoolLayer(name="pool", channels=16, in_height=16, in_width=16, kernel=2, stride=2,
                          input_bits=4, weight_bits=2, output_bits=4),
            ],
        )
        fused_program = FusionCompiler(default_config).compile(network)
        unfused_program = FusionCompiler(default_config, enable_layer_fusion=False).compile(network)
        fused_store = fused_program[0].tiling.dram_output_write_bits
        unfused_store = unfused_program[0].tiling.dram_output_write_bits
        assert fused_store < unfused_store

    def test_every_compute_layer_gets_a_block(self, default_config):
        network = models.load("Cifar-10")
        program = compile_network(network, default_config)
        compiled_heads = {compiled.layer.name for compiled in program}
        compute_names = {layer.name for layer in network.compute_layers()}
        assert compute_names <= compiled_heads

    def test_compile_layer_convenience_wrapper(self, default_config):
        compute = compile_layer(FCLayer(name="fc", in_features=32, out_features=8), default_config)
        auxiliary = compile_layer(PoolLayer(name="p"), default_config)
        assert compute.layer.name == "fc"
        assert auxiliary.layer.name == "p"

    def test_program_blocks_store_st_mem(self, default_config):
        program = compile_network(models.load("LSTM"), default_config)
        for compiled in program:
            assert any(isinstance(i, StMem) for i in compiled.block)

    def test_loop_iterations_fit_isa_fields(self, default_config):
        for name in ("AlexNet", "ResNet-18"):
            program = compile_network(models.load(name), default_config)
            for compiled in program:
                for loop in compiled.block.loops():
                    assert 1 <= loop.iterations <= (1 << 16) - 1
