"""Figure 17 — performance comparison with the Tegra X2 and Titan Xp GPUs."""

from __future__ import annotations

from repro.harness.experiments import fig17_gpu


def test_fig17_gpu_comparison(benchmark, bench_once, capsys):
    summary = bench_once(benchmark, fig17_gpu.run)

    with capsys.disabled():
        print()
        print(fig17_gpu.format_table(summary))

    rows = {row.benchmark: row for row in summary.rows}
    assert len(rows) == 8

    # Every platform beats the Tegra X2 baseline on every benchmark.
    for row in summary.rows:
        assert row.titanx_fp32 > 1.0
        assert row.titanx_int8 > 1.0
        assert row.bitfusion > 1.0

    # Ordering of the geomeans follows the paper: INT8 > FP32 on the Titan,
    # and Bit Fusion sits in the same league as the 250 W Titan Xp.
    assert summary.geomean_titanx_int8 > summary.geomean_titanx_fp32
    assert summary.geomean_bitfusion > summary.geomean_titanx_fp32 * 0.5
    assert 5.0 < summary.geomean_titanx_fp32 < 30.0  # paper: 12x

    # Where Bit Fusion's wins fall: the low-bitwidth CIFAR-class CNNs see the
    # largest gains (paper: VGG-7 48x, Cifar-10 34x), while AlexNet — which
    # runs its 4x-larger widened model on Bit Fusion — sees the smallest CNN
    # gain (paper: 3.2x).
    top_two = sorted(summary.rows, key=lambda row: row.bitfusion, reverse=True)[:2]
    assert {row.benchmark for row in top_two} <= {"VGG-7", "Cifar-10", "SVHN"}
    assert rows["AlexNet"].bitfusion < rows["Cifar-10"].bitfusion
    assert rows["AlexNet"].bitfusion < rows["VGG-7"].bitfusion

    # Bit Fusion draws a few watts at most (paper: 895 mW) versus 250 W.
    assert all(row.bitfusion_power_w < 10.0 for row in summary.rows)
