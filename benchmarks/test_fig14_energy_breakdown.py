"""Figure 14 — energy breakdown of Bit Fusion and Eyeriss by component."""

from __future__ import annotations

from repro.harness.experiments import fig14_breakdown


def test_fig14_energy_breakdown(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, fig14_breakdown.run)

    with capsys.disabled():
        print()
        print(fig14_breakdown.format_table(rows))

    bitfusion_rows = [row for row in rows if row.platform == "bitfusion"]
    eyeriss_rows = [row for row in rows if row.platform == "eyeriss"]
    assert len(bitfusion_rows) == 8
    assert len(eyeriss_rows) == 8

    for row in bitfusion_rows:
        # Bit Fusion's systolic organization has no per-PE register files...
        assert row.register_file == 0.0
        # ...and memory accesses dominate its energy (paper: ~90% incl. buffers).
        assert row.buffers + row.dram > 0.75
        assert row.dram > row.compute

    for row in eyeriss_rows:
        # Eyeriss spends most of its energy moving data, with the register
        # file as the single largest consumer for the compute-heavy CNNs.
        assert row.memory_fraction > 0.7
        assert row.register_file > 0.1
    cnn_rows = [row for row in eyeriss_rows if row.benchmark in ("AlexNet", "Cifar-10", "VGG-7")]
    assert all(row.register_file > row.compute for row in cnn_rows)
