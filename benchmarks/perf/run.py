"""Tracked performance micro-benchmarks for the compile/evaluate hot path.

``python benchmarks/perf/run.py`` measures the scenarios the ROADMAP's
"runs as fast as the hardware allows" goal cares about and emits one
trajectory point as JSON (``BENCH_9.json`` by default):

* **cold compile** — every zoo network through a fresh ``FusionCompiler``
  (vectorized tiling search, no memoization), total and per network;
* **tiling search** — the same searches the zoo triggers, timed through
  the scalar reference and the vectorized scorer, as a machine-independent
  speedup ratio;
* **memoized compile** — the zoo compiled through the session's tiling
  memo (``make_plan_resolver``), the way reports and sweeps compile;
* **compile speedup vs the scalar baseline** — reconstructed old cost
  (emission + scalar searches) over the new memoized cost; the repo's
  acceptance bar is >= 3x;
* **batched simulation** — every zoo block simulated through the scalar
  ``run_block`` oracle and through the vectorized batched executor, both
  as a single-config batch and as a configs x blocks grid (the
  bandwidth-sweep fast path); the speedups are machine-independent ratios
  and the repo's acceptance bar is >= 5x on the grid;
* **warm/cold run_many** — a small evaluation batch through an
  ``EvaluationSession``, cold then fully warm;
* **parallel run_many (--jobs)** — the same batch over a two-worker pool,
  cold and partially warm (one workload's artifacts pre-seeded), so the
  cache-aware worker protocol's cost stays tracked;
* **remote run_many (--backend remote)** — the same batch dispatched to an
  in-thread TCP worker daemon on localhost, with the coordinator-side
  dispatch (serialize + submit) cost reported per work unit, so the remote
  backend's wire-protocol overhead stays tracked;
* **cache I/O** — persisting and bulk-reading a thousand-plus artifact
  entries through the legacy one-file-per-entry JSON layout vs the
  segmented pack store's batched group commits and ``get_many`` (the
  speedups are machine-independent ratios and the repo's acceptance bar
  is >= 5x on batched persists);
* **sweep grid expansion** — ``SweepSpec.expand`` on a few-hundred-point
  spec;
* **Pareto reduction** — the sort-based frontier on synthetic points;
* **NAS estimator** — a mutated ResNet-18 candidate priced through the
  cache-composition estimator on a warm cache vs full ``evaluate()`` (the
  repo's acceptance bar is >= 50x, with zero fresh simulations), the
  unseen-layer dedupe rate of a fingerprint-deduped candidate batch, and
  the candidates/second of a fully-warm search.

``--check BASELINE`` compares the measured metrics against a committed
baseline (``benchmarks/perf/baseline.json``) and exits non-zero on any
violated bound — the CI ``perf-smoke`` job runs exactly that.  Bounds on
wall-clock metrics carry generous headroom for slower CI machines; the
ratios (speedups, hit rates) are machine-independent and tight.  See
``docs/performance.md`` for how to read and refresh the numbers.
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy  # noqa: E402

from repro import __version__  # noqa: E402
from repro.core.accelerator import BitFusionAccelerator  # noqa: E402
from repro.core.config import BitFusionConfig  # noqa: E402
from repro.dnn import models  # noqa: E402
from repro.nas import Estimator, SearchSpec, mutate, run_search  # noqa: E402
from repro.dse.pareto import pareto_indices  # noqa: E402
from repro.dse.spec import SweepSpec  # noqa: E402
from repro.isa.compiler import FusionCompiler  # noqa: E402
from repro.isa.tiling import search_tiling, search_tiling_scalar  # noqa: E402
from repro.session import EvaluationSession, Workload  # noqa: E402
from repro.session.cache import CacheStats, ProgramStats, ResultCache  # noqa: E402
from repro.session.engine import make_plan_resolver  # noqa: E402
from repro.session.remote import RemoteBackend, WorkerServer  # noqa: E402
from repro.sim.batched import simulate_blocks_batched, simulate_blocks_grid  # noqa: E402
from repro.sim.executor import BitFusionSimulator  # noqa: E402

#: Networks the run_many scenario evaluates — small enough to keep the
#: suite fast, two networks so the batch genuinely exercises scheduling.
_RUN_MANY_NETWORKS = ("LeNet-5", "LSTM")
_BATCH = 4


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs (noise suppression)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _collect_searches(config: BitFusionConfig) -> list[tuple]:
    """Every (gemm, orders) pair the zoo's compilation searches."""
    searches: list[tuple] = []

    def recorder(gemm, orders, compute):
        searches.append((gemm, orders))
        return compute()

    for name in models.BENCHMARKS:
        compiler = FusionCompiler(config, plan_resolver=recorder)
        compiler.compile(models.load(name), batch_size=16)
    return searches


def bench_compile(repeats: int) -> dict:
    config = BitFusionConfig.eyeriss_matched(batch_size=16)
    networks = {name: models.load(name) for name in models.BENCHMARKS}

    per_network: dict[str, float] = {}
    for name, network in networks.items():
        compiler = FusionCompiler(config)
        per_network[name] = _best_of(
            repeats, lambda c=compiler, n=network: c.compile(n, batch_size=16)
        )
    cold_total = sum(per_network.values())

    searches = _collect_searches(config)
    scalar_search_s = _best_of(
        repeats,
        lambda: [search_tiling_scalar(g, config, o) for g, o in searches],
    )
    vector_search_s = _best_of(
        repeats,
        lambda: [search_tiling(g, config, o) for g, o in searches],
    )

    memo_stats_runs: list[CacheStats] = []

    def memoized_compile() -> None:
        cache, stats = ResultCache(), CacheStats()
        resolver = make_plan_resolver(config, cache, stats)
        for network in networks.values():
            FusionCompiler(config, plan_resolver=resolver).compile(network, batch_size=16)
        memo_stats_runs.append(stats)

    memo_total = _best_of(repeats, memoized_compile)
    memo_stats = memo_stats_runs[-1]

    # The pre-vectorization compiler = today's emission + scalar searches.
    legacy_total = cold_total - vector_search_s + scalar_search_s
    return {
        "cold_compile_total_s": cold_total,
        "cold_compile_per_network_s": per_network,
        "tiling_searches": len(searches),
        "tiling_search_scalar_s": scalar_search_s,
        "tiling_search_vectorized_s": vector_search_s,
        "tiling_search_speedup": scalar_search_s / vector_search_s,
        "memoized_compile_total_s": memo_total,
        "tiling_memo_cold_hit_rate": memo_stats.tilings.hit_rate,
        "compile_speedup_vs_scalar": legacy_total / memo_total,
    }


def bench_tiling_memo_warm() -> dict:
    """Recompile the zoo against a warm tiling memo: zero searches allowed."""
    config = BitFusionConfig.eyeriss_matched(batch_size=16)
    cache = ResultCache()
    warm_stats = CacheStats()
    for name in models.BENCHMARKS:
        resolver = make_plan_resolver(config, cache, CacheStats())
        FusionCompiler(config, plan_resolver=resolver).compile(
            models.load(name), batch_size=16
        )
    for name in models.BENCHMARKS:
        resolver = make_plan_resolver(config, cache, warm_stats)
        FusionCompiler(config, plan_resolver=resolver).compile(
            models.load(name), batch_size=16
        )
    return {
        "tiling_memo_warm_lookups": warm_stats.tilings.lookups,
        "tiling_memo_warm_hit_rate": warm_stats.tilings.hit_rate,
        "tiling_memo_warm_searches": warm_stats.tilings.misses,
    }


def bench_sim(repeats: int) -> dict:
    """Batched vs scalar simulation of every zoo block (1-D and grid)."""
    config = BitFusionConfig.eyeriss_matched(batch_size=16)
    blocks = []
    for name in models.BENCHMARKS:
        blocks.extend(FusionCompiler(config).compile(models.load(name), batch_size=16))

    batched_sim = BitFusionSimulator(config)
    scalar_sim = BitFusionSimulator(config, batched=False)
    scalar_s = _best_of(repeats, lambda: [scalar_sim.run_block(b) for b in blocks])
    batched_s = _best_of(repeats, lambda: simulate_blocks_batched(batched_sim, blocks))

    # The bandwidth-sweep fast path: one block batch under several sim
    # configs in a single 2-D pass (extraction amortized across rows).
    grid_configs = [
        config,
        config.with_bandwidth(128),
        config.with_bandwidth(512),
        config.with_bandwidth(768),
    ]
    grid_sims = [BitFusionSimulator(c) for c in grid_configs]
    grid_oracles = [BitFusionSimulator(c, batched=False) for c in grid_configs]
    grid_scalar_s = _best_of(
        repeats,
        lambda: [[sim.run_block(b) for b in blocks] for sim in grid_oracles],
    )
    grid_batched_s = _best_of(repeats, lambda: simulate_blocks_grid(grid_sims, blocks))
    return {
        "sim_blocks": len(blocks),
        "sim_scalar_s": scalar_s,
        "sim_batched_s": batched_s,
        "sim_batched_speedup": scalar_s / batched_s,
        "sim_grid_configs": len(grid_configs),
        "sim_grid_scalar_s": grid_scalar_s,
        "sim_grid_batched_s": grid_batched_s,
        "sim_grid_speedup": grid_scalar_s / grid_batched_s,
    }


def bench_run_many(repeats: int) -> dict:
    workloads = [
        Workload.bitfusion(name, batch_size=_BATCH) for name in _RUN_MANY_NETWORKS
    ]
    # Cold is only cold once per session, so each repeat gets a fresh one;
    # warm lookups are sub-millisecond, so they especially need the
    # best-of-N noise suppression (the CI gate bounds the speedup).
    cold_s = warm_s = float("inf")
    warm_hits = 0
    for _ in range(repeats):
        with EvaluationSession() as session:
            start = time.perf_counter()
            session.run_many(workloads)
            cold_s = min(cold_s, time.perf_counter() - start)
            warm_s = min(warm_s, _best_of(repeats, lambda: session.run_many(workloads)))
            warm_hits = session.stats.hits
    return {
        "run_many_cold_s": cold_s,
        "run_many_warm_s": warm_s,
        "run_many_warm_speedup": cold_s / warm_s,
        "run_many_warm_hits": warm_hits,
    }


def bench_run_many_jobs(repeats: int) -> dict:
    """The ``--jobs`` scenario: parallel run_many, cold and partially warm.

    Pool start-up (worker process spawn + imports) is part of the cold
    number on purpose — it is what a user of ``--jobs`` actually pays.  The
    partially-warm run pre-seeds one workload's artifacts through a serial
    session sharing the same cache, so the parallel path's warm-artifact
    resolution (central planning, sliced work units) stays tracked.
    """
    workloads = [
        Workload.bitfusion(name, batch_size=_BATCH) for name in _RUN_MANY_NETWORKS
    ]
    cold_s = partial_s = float("inf")
    for _ in range(repeats):
        with EvaluationSession(jobs=2) as session:
            start = time.perf_counter()
            session.run_many(workloads)
            cold_s = min(cold_s, time.perf_counter() - start)
        cache = ResultCache()
        with EvaluationSession(cache=cache) as seeder:
            seeder.run(workloads[0])
        with EvaluationSession(jobs=2, cache=cache) as session:
            start = time.perf_counter()
            session.run_many(workloads)
            partial_s = min(partial_s, time.perf_counter() - start)
    return {
        "run_many_jobs2_cold_s": cold_s,
        "run_many_jobs2_partial_warm_s": partial_s,
    }


def bench_run_many_remote(repeats: int) -> dict:
    """The ``--backend remote`` scenario: run_many over a localhost worker.

    One in-thread ``WorkerServer`` on an ephemeral localhost port stands in
    for a remote host — the cheapest honest measurement of the wire
    protocol (JSON serialization, length-prefixed framing, a real TCP
    round-trip per unit) without network variance.  The cold wall-clock is
    what a ``--backend remote`` user pays end to end; the per-unit dispatch
    number isolates the coordinator-side cost of serializing and submitting
    one work unit, which is the overhead bound the committed baseline
    enforces.
    """
    workloads = [
        Workload.bitfusion(name, batch_size=_BATCH) for name in _RUN_MANY_NETWORKS
    ]
    cold_s = float("inf")
    units = 0
    dispatch_per_unit_s = float("inf")
    for _ in range(repeats):
        server = WorkerServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            backend = RemoteBackend([server.address], timeout=60.0)
            with EvaluationSession(backend=backend) as session:
                start = time.perf_counter()
                session.run_many(workloads)
                cold_s = min(cold_s, time.perf_counter() - start)
                workers = session.stats.workers
                units = workers.units
                if units:
                    dispatch_per_unit_s = min(
                        dispatch_per_unit_s, workers.dispatch_seconds / units
                    )
        finally:
            server.close()
            thread.join(timeout=10)
    return {
        "run_many_remote_cold_s": cold_s,
        "remote_work_units": units,
        "remote_dispatch_per_unit_s": dispatch_per_unit_s,
    }


def bench_cache_io(repeats: int) -> dict:
    """Artifact persistence and bulk reads: JSON dir vs segmented store.

    Persisting measures what ``run_many`` and the NAS store-back actually
    pay per artifact batch: the legacy layout writes (and fsync-queues) one
    file per entry, the pack store group-commits the whole batch as a
    single segment append.  Reading compares a per-key ``get`` loop over
    the JSON dir with one ``get_many`` index pass over the pack store —
    both through a fresh ``ResultCache`` so the open cost (manifest load,
    index build) is included, exactly as a warm run or remote worker
    sees it.  The speedups are machine-independent ratios; the repo's
    acceptance bar is >= 5x for batched persists at >= 1000 entries.
    """
    entries = 1200
    items = [
        (
            f"bench-entry-{index:05d}",
            ProgramStats(
                network_name=f"net-{index:05d}",
                block_instruction_counts=(index, index + 1, index + 2),
                total_instructions=3 * index + 3,
                binary_bytes=12 * index,
            ),
        )
        for index in range(entries)
    ]
    keys = [key for key, _ in items]

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as base:
        root = Path(base)
        fresh = itertools.count()

        def json_put() -> None:
            cache = ResultCache(root / f"json-{next(fresh)}", layout="json")
            for key, value in items:
                cache.put(key, value)
            cache.flush()
            cache.close()

        def pack_put() -> None:
            cache = ResultCache(root / f"pack-{next(fresh)}", layout="pack")
            with cache.batch():
                for key, value in items:
                    cache.put(key, value)
            cache.flush()
            cache.close()

        json_put_s = _best_of(repeats, json_put)
        pack_put_s = _best_of(repeats, pack_put)

        json_dir, pack_dir = root / "json-read", root / "pack-read"
        for directory, layout in ((json_dir, "json"), (pack_dir, "pack")):
            seeder = ResultCache(directory, layout=layout)
            with seeder.batch():
                for key, value in items:
                    seeder.put(key, value)
            seeder.flush()
            seeder.close()

        def json_get() -> None:
            cache = ResultCache(json_dir, layout="json")
            for key in keys:
                assert cache.get(key) is not None
            cache.close()

        def pack_get_many() -> None:
            cache = ResultCache(pack_dir, layout="pack")
            assert len(cache.get_many(keys)) == entries
            cache.close()

        json_get_s = _best_of(repeats, json_get)
        pack_get_s = _best_of(repeats, pack_get_many)

    return {
        "cache_io_entries": entries,
        "cache_put_json_s": json_put_s,
        "cache_put_pack_s": pack_put_s,
        "cache_put_speedup": json_put_s / pack_put_s,
        "cache_put_pack_entries_per_s": entries / pack_put_s,
        "cache_get_json_s": json_get_s,
        "cache_get_many_pack_s": pack_get_s,
        "cache_get_speedup": json_get_s / pack_get_s,
        "cache_get_many_entries_per_s": entries / pack_get_s,
    }


def bench_sweep_expand(repeats: int) -> dict:
    spec = SweepSpec.from_dict(
        {
            "name": "perf grid",
            "networks": ["LeNet-5", "Cifar-10"],
            "batch_sizes": [4, 16],
            "axes": {
                "array": [[8, 8], [16, 16], [32, 16]],
                "technology": ["45nm", "16nm"],
                "bandwidth": [128, 192, 256],
                "frequency": [250.0, 500.0],
            },
        }
    )
    seconds = _best_of(repeats, spec.expand)
    return {"sweep_expand_points": spec.grid_size(), "sweep_expand_s": seconds}


def bench_pareto(repeats: int) -> dict:
    rng = random.Random(5)
    points = [
        (rng.uniform(0.1, 50.0), rng.uniform(0.01, 5.0), rng.uniform(0.5, 10.0))
        for _ in range(2000)
    ]
    seconds = _best_of(repeats, lambda: pareto_indices(points))
    return {"pareto_points": len(points), "pareto_reduce_s": seconds}


def bench_nas(repeats: int) -> dict:
    """The NAS estimator scenarios: warm pricing, batch dedupe, search rate.

    Warm pricing is the acceptance-criteria number: after one cold pricing,
    re-estimating a mutated ResNet-18 candidate must be pure cache lookup +
    composition — zero fresh simulations (tracked exactly) and >= 50x
    faster than ``BitFusionAccelerator.evaluate``.  The dedupe rate is
    deterministic (seeded mutations), so its bound is tight; the
    candidates/second of a fully-warm search is wall-clock and bounded
    generously.
    """
    config = BitFusionConfig.eyeriss_matched()
    base = models.load("ResNet-18")
    mutant = mutate(base, random.Random(7))

    estimator = Estimator(config)
    estimator.estimate(base)
    estimator.estimate(mutant)
    simulated_before = estimator.stats.layers_simulated
    warm_s = _best_of(max(repeats * 7, 20), lambda: estimator.estimate(mutant))
    warm_simulated = estimator.stats.layers_simulated - simulated_before
    evaluate_s = _best_of(repeats, lambda: BitFusionAccelerator(config).evaluate(mutant))

    # Unseen-layer batch efficiency: one cold fingerprint-deduped generation
    # (eight seeded mutants + the base).  Most blocks repeat across the
    # near-clones, so they compose or defer instead of simulating.
    batch_estimator = Estimator(config)
    rng = random.Random(11)
    batch_estimator.estimate_many([base] + [mutate(base, rng) for _ in range(8)])
    batch_stats = batch_estimator.stats

    # Candidates/second with everything cached: the same seeded search run
    # twice over one estimator — the second pass re-prices every candidate
    # by composition alone.
    spec = SearchSpec(base_network="CIFAR-10", population=8, generations=3, seed=5)
    search_estimator = Estimator(config)
    run_search(spec, estimator=search_estimator)
    warm_search = run_search(spec, estimator=search_estimator)

    return {
        "nas_warm_estimate_s": warm_s,
        "nas_evaluate_s": evaluate_s,
        "nas_estimator_speedup": evaluate_s / warm_s,
        "nas_warm_simulated": warm_simulated,
        "nas_batch_layer_lookups": batch_stats.layer_lookups,
        "nas_batch_simulated": batch_stats.layers_simulated,
        "nas_batch_dedupe_rate": batch_stats.hit_rate,
        "nas_warm_candidates_per_s": warm_search.candidates_per_second,
    }


def run_suite(repeats: int) -> dict:
    metrics: dict = {}
    metrics.update(bench_compile(repeats))
    metrics.update(bench_tiling_memo_warm())
    metrics.update(bench_sim(repeats))
    metrics.update(bench_run_many(repeats))
    metrics.update(bench_run_many_jobs(repeats))
    metrics.update(bench_run_many_remote(repeats))
    metrics.update(bench_cache_io(repeats))
    metrics.update(bench_sweep_expand(repeats))
    metrics.update(bench_pareto(repeats))
    metrics.update(bench_nas(repeats))
    return {
        "bench": "repro-perf",
        "trajectory_point": 9,
        "repro_version": __version__,
        "metrics": metrics,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
        },
    }


def check_against_baseline(result: dict, baseline_path: Path) -> list[str]:
    """Violated bounds, one message each (empty when everything passes).

    The baseline's ``checks`` list carries explicit bounds: ``max`` caps a
    lower-is-better metric (wall-clock seconds, with headroom for slower
    machines), ``min`` floors a higher-is-better one (speedups, hit
    rates).  Keeping the bounds in the committed JSON — rather than
    deriving them here from raw baseline numbers — makes every tightening
    or loosening a reviewed diff.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    metrics = result["metrics"]
    failures: list[str] = []
    for check in baseline["checks"]:
        name = check["metric"]
        if name not in metrics:
            failures.append(f"{name}: metric missing from this run")
            continue
        value = metrics[name]
        if "max" in check and value > check["max"]:
            failures.append(f"{name}: {value:.6g} exceeds max {check['max']:.6g}")
        if "min" in check and value < check["min"]:
            failures.append(f"{name}: {value:.6g} below min {check['min']:.6g}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the tracked perf micro-benchmarks and emit a JSON "
        "trajectory point (see docs/performance.md)."
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=str(REPO_ROOT / "BENCH_9.json"),
        help="where to write the trajectory point (default: BENCH_9.json at the repo root)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline JSON and exit non-zero "
        "on any violated bound (CI perf-smoke mode)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="best-of-N timing for the micro-benchmarks (default: 3)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    result = run_suite(args.repeats)
    Path(args.output).write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    metrics = result["metrics"]
    print(f"wrote {args.output}")
    print(
        f"cold compile: {metrics['cold_compile_total_s'] * 1e3:.1f} ms over "
        f"{len(metrics['cold_compile_per_network_s'])} networks "
        f"({metrics['tiling_searches']} tiling searches)"
    )
    print(
        f"tiling search speedup (vectorized vs scalar): "
        f"{metrics['tiling_search_speedup']:.1f}x"
    )
    print(
        f"compile speedup vs scalar baseline (memoized): "
        f"{metrics['compile_speedup_vs_scalar']:.1f}x"
    )
    print(
        f"warm tiling memo: {metrics['tiling_memo_warm_lookups']} lookups, "
        f"hit rate {metrics['tiling_memo_warm_hit_rate']:.0%}"
    )
    print(
        f"batched sim speedup over {metrics['sim_blocks']} zoo blocks: "
        f"{metrics['sim_batched_speedup']:.1f}x single-config, "
        f"{metrics['sim_grid_speedup']:.1f}x on a "
        f"{metrics['sim_grid_configs']}-config grid"
    )
    print(
        f"run_many: cold {metrics['run_many_cold_s'] * 1e3:.0f} ms, "
        f"warm {metrics['run_many_warm_s'] * 1e3:.1f} ms"
    )
    print(
        f"run_many --jobs 2: cold {metrics['run_many_jobs2_cold_s'] * 1e3:.0f} ms, "
        f"partially warm {metrics['run_many_jobs2_partial_warm_s'] * 1e3:.0f} ms"
    )
    print(
        f"run_many --backend remote (localhost worker): "
        f"cold {metrics['run_many_remote_cold_s'] * 1e3:.0f} ms, "
        f"{metrics['remote_work_units']} work units, "
        f"dispatch {metrics['remote_dispatch_per_unit_s'] * 1e6:.0f} us/unit"
    )
    print(
        f"cache io over {metrics['cache_io_entries']} entries: "
        f"batched pack persist {metrics['cache_put_pack_entries_per_s']:.0f} entries/s "
        f"({metrics['cache_put_speedup']:.1f}x vs json files), "
        f"get_many {metrics['cache_get_many_entries_per_s']:.0f} entries/s "
        f"({metrics['cache_get_speedup']:.1f}x vs per-key json gets)"
    )
    print(
        f"nas estimator: warm estimate {metrics['nas_warm_estimate_s'] * 1e6:.0f} us "
        f"vs evaluate {metrics['nas_evaluate_s'] * 1e3:.2f} ms "
        f"({metrics['nas_estimator_speedup']:.0f}x, "
        f"{metrics['nas_warm_simulated']} fresh simulations); "
        f"batch dedupe rate {metrics['nas_batch_dedupe_rate']:.0%}, "
        f"warm search {metrics['nas_warm_candidates_per_s']:.0f} candidates/s"
    )

    if args.check:
        failures = check_against_baseline(result, Path(args.check))
        if failures:
            print(f"perf check FAILED against {args.check}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"perf check passed against {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
