"""Ablations — quantify each design mechanism DESIGN.md calls out.

Not a paper figure: these benches isolate (1) bit-level fusion itself,
(2) the loop-ordering optimization and (3) layer fusion, by disabling each
and measuring the slowdown / energy increase on the full benchmark suite.
"""

from __future__ import annotations

from repro.harness.experiments import ablations


def test_compiler_and_fusion_ablations(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, ablations.run)

    with capsys.disabled():
        print()
        print(ablations.format_table(rows))
        summary = ablations.geomean_summary(rows)
        print()
        print("geomean impact of disabling each mechanism:")
        for key, value in summary.items():
            print(f"  {key:36s} {value:5.2f}x")

    assert len(rows) == 8
    summary = ablations.geomean_summary(rows)

    # Bit-level fusion is the headline: forcing 8-bit execution costs a
    # multi-x slowdown and energy increase across the suite.
    assert summary["fixed_8bit_slowdown"] > 2.0
    assert summary["fixed_8bit_energy_increase"] > 1.5

    # The compiler optimizations never hurt and help at least somewhere.
    assert summary["no_loop_ordering_slowdown"] >= 1.0
    assert summary["no_layer_fusion_slowdown"] >= 1.0
    assert summary["no_loop_ordering_energy_increase"] >= 1.0
    assert summary["no_layer_fusion_energy_increase"] >= 1.0
    assert any(row.no_layer_fusion_energy_increase > 1.05 for row in rows)
