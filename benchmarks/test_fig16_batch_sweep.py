"""Figure 16 — sensitivity of Bit Fusion performance to batch size."""

from __future__ import annotations

import pytest

from repro.harness.experiments import fig16_batch


def test_fig16_batch_sensitivity(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, fig16_batch.run)

    with capsys.disabled():
        print()
        print(fig16_batch.format_table(rows))

    by_benchmark = {row.benchmark: row.speedup_by_batch for row in rows}
    assert len(by_benchmark) == 8

    for name, sweep in by_benchmark.items():
        assert sweep[1] == pytest.approx(1.0)
        # Batching amortizes weight reads: per-inference latency never gets worse.
        assert sweep[4] >= 0.99, name
        assert sweep[256] >= sweep[4] * 0.99, name

    # The weight-bound recurrent benchmarks gain an order of magnitude
    # (paper: >20x), the convolutional benchmarks gain modestly (<2x).
    for name in ("LSTM", "RNN"):
        assert by_benchmark[name][256] > 8.0
    for name in ("AlexNet", "Cifar-10", "ResNet-18", "SVHN", "VGG-7"):
        assert by_benchmark[name][256] < 4.0

    # Gains flatten once the batch is large enough to hide the weight traffic.
    for name, sweep in by_benchmark.items():
        assert sweep[256] <= sweep[64] * 1.8, name
