"""Figure 1 — bitwidth variation across the benchmark DNNs.

Regenerates the multiply-add and weight bitwidth distributions of Figure 1
and checks the qualitative claims the introduction builds on: the dominant
bitwidth pair of every benchmark matches the paper, the vast majority of
multiply-adds need four or fewer bits, and multiply-adds account for >99% of
all operations.
"""

from __future__ import annotations

from repro.harness import paper_data
from repro.harness.experiments import fig01_bitwidths


def test_fig01_bitwidth_distribution(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, fig01_bitwidths.run)

    with capsys.disabled():
        print()
        print(fig01_bitwidths.format_table(rows))

    assert len(rows) == 8
    for row in rows:
        assert row.dominant_bits == paper_data.FIG1_DOMINANT_BITWIDTHS[row.benchmark]
        assert row.mac_op_fraction > 0.99
    average_low_precision = sum(row.macs_at_or_below_4bit for row in rows) / len(rows)
    assert average_low_precision > 0.9  # paper: 97.3% on average
