"""Section IV — Fusion-ISA instruction-block statistics across the benchmarks."""

from __future__ import annotations

from repro.harness.experiments import isa_stats


def test_isa_block_sizes(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, isa_stats.run)

    with capsys.disabled():
        print()
        print(isa_stats.format_table(rows))

    assert len(rows) == 8
    for row in rows:
        # The paper reports 30-86 instructions per block; the reproduction's
        # compiler lands in the same few-tens band for every layer.
        assert 20 <= row.min_instructions
        assert row.max_instructions <= 90
        assert row.min_instructions <= row.mean_instructions <= row.max_instructions
        # Whole-network programs stay tiny (a few kilobytes), which is the
        # point of the block-structured ISA.
        assert row.binary_bytes < 16 * 1024
        assert row.blocks >= 2
