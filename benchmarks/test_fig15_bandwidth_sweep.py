"""Figure 15 — sensitivity of Bit Fusion performance to off-chip bandwidth."""

from __future__ import annotations

import pytest

from repro.harness.experiments import fig15_bandwidth


def test_fig15_bandwidth_sensitivity(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, fig15_bandwidth.run)

    with capsys.disabled():
        print()
        print(fig15_bandwidth.format_table(rows))

    by_benchmark = {row.benchmark: row.speedup_by_bandwidth for row in rows}
    assert len(by_benchmark) == 8

    for name, sweep in by_benchmark.items():
        # Normalized to the 128 bits/cycle default.
        assert sweep[128] == pytest.approx(1.0)
        # More bandwidth never hurts; less bandwidth never helps.
        assert sweep[32] <= sweep[64] <= sweep[128] <= sweep[256] <= sweep[512], name

    # The recurrent benchmarks are bandwidth-bound and scale almost linearly
    # (paper: 4x speedup at 4x bandwidth), while the CNNs saturate well below 4x.
    for name in ("LSTM", "RNN"):
        assert by_benchmark[name][512] > 3.0
        assert by_benchmark[name][32] < 0.35
    for name in ("AlexNet", "Cifar-10", "SVHN", "VGG-7"):
        assert by_benchmark[name][512] < by_benchmark["RNN"][512]
