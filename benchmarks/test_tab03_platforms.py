"""Table III — evaluated ASIC, GPU and Bit Fusion platform configurations."""

from __future__ import annotations

from repro.harness.experiments import tab03_platforms


def test_tab03_platforms(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, tab03_platforms.run)

    with capsys.disabled():
        print()
        print(tab03_platforms.format_table(rows))

    platforms = {row.platform for row in rows}
    assert len(rows) == 8
    assert any("Temporal" in platform for platform in platforms)
    assert any("Eyeriss" in platform for platform in platforms)
    assert any("Stripes" in platform for platform in platforms)
    assert any("Tegra" in platform for platform in platforms)
    assert any("Titan" in platform for platform in platforms)

    eyeriss_matched = next(row for row in rows if "Eyeriss-matched" in row.platform)
    assert "512 Fusion Units" in eyeriss_matched.compute_units
    assert eyeriss_matched.frequency_mhz == 500.0

    gpu_scaled = next(row for row in rows if "16 nm" in row.platform)
    assert "4096 Fusion Units" in gpu_scaled.compute_units
