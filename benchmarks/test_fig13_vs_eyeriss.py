"""Figure 13 — Bit Fusion speedup and energy reduction over Eyeriss.

Shape checks (the acceptance criteria of DESIGN.md): Bit Fusion wins on
every benchmark, the binary networks (Cifar-10, SVHN) gain the most, the
recurrent and 8-bit-heavy networks gain the least, and the geometric means
land in the multi-x band the paper reports (3.9x / 5.1x).  Absolute factors
from this analytical simulator overshoot the paper's RTL-validated numbers;
EXPERIMENTS.md records the gap.
"""

from __future__ import annotations

from repro.harness.experiments import fig13_eyeriss


def test_fig13_speedup_and_energy_vs_eyeriss(benchmark, bench_once, capsys):
    summary = bench_once(benchmark, fig13_eyeriss.run)

    with capsys.disabled():
        print()
        print(fig13_eyeriss.format_table(summary))

    rows = {row.benchmark: row for row in summary.rows}
    assert len(rows) == 8

    # Who wins: Bit Fusion, everywhere, on both axes.
    assert all(row.speedup > 1.0 for row in summary.rows)
    assert all(row.energy_reduction > 1.0 for row in summary.rows)

    # Where the big and small wins fall (Figure 13 shape).
    assert rows["Cifar-10"].speedup == max(row.speedup for row in summary.rows)
    assert rows["Cifar-10"].speedup > rows["AlexNet"].speedup
    assert rows["SVHN"].speedup > rows["LSTM"].speedup
    assert rows["AlexNet"].speedup == min(
        rows[name].speedup for name in ("AlexNet", "Cifar-10", "SVHN", "VGG-7")
    )

    # Roughly what factor: clearly multi-x geomeans, same direction as 3.9x/5.1x.
    assert summary.geomean_speedup > 2.0
    assert summary.geomean_energy_reduction > 2.0
