"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  The experiment runners are deterministic simulations, so each
benchmark executes a single round (the interesting output is the printed
table and the shape assertions, not timing statistics) and prints the
reproduced table next to the paper's published numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the benchmarks from a source checkout without installing.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once():
    """Fixture exposing :func:`run_once` to the benchmark modules."""
    return run_once
