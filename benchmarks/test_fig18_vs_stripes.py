"""Figure 18 — Bit Fusion speedup and energy reduction over Stripes."""

from __future__ import annotations

from repro.harness.experiments import fig18_stripes


def test_fig18_speedup_and_energy_vs_stripes(benchmark, bench_once, capsys):
    summary = bench_once(benchmark, fig18_stripes.run)

    with capsys.disabled():
        print()
        print(fig18_stripes.format_table(summary))

    rows = {row.benchmark: row for row in summary.rows}
    assert len(rows) == 8

    # Bit Fusion never loses to Stripes.
    assert all(row.speedup >= 1.0 for row in summary.rows)
    assert all(row.energy_reduction > 1.0 for row in summary.rows)

    # Shape: benchmarks with low *input* bitwidths (which Stripes cannot
    # exploit) gain the most; AlexNet with its 8-bit layers and the
    # memory-bound recurrent networks gain the least.
    assert rows["LeNet-5"].speedup > rows["AlexNet"].speedup
    assert rows["Cifar-10"].speedup > rows["LSTM"].speedup
    assert min(row.speedup for row in summary.rows) == min(
        rows["LSTM"].speedup, rows["RNN"].speedup
    )

    # Geomeans sit in the small-multiple band the paper reports (2.6x / 3.9x).
    assert 1.5 < summary.geomean_speedup < 8.0
    assert 1.5 < summary.geomean_energy_reduction < 10.0
