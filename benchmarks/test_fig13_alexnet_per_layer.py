"""Figure 13 (embedded data) — per-layer AlexNet improvement over Eyeriss.

The arXiv source embeds a per-layer-group table for AlexNet; the reproduced
per-group speedups match it closely (conv 8/8 ~1.7x, conv 4/1 ~6.4x,
fc 4/1 ~3.3x, fc 8/8 ~1.0x), which validates the performance model at layer
granularity.
"""

from __future__ import annotations

import pytest

from repro.harness import paper_data
from repro.harness.experiments import fig13_eyeriss
from repro.harness.reporting import format_table


def test_fig13_alexnet_per_layer(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, fig13_eyeriss.run_alexnet_per_layer)

    with capsys.disabled():
        print()
        print(format_table(rows, title="AlexNet per-layer improvement over Eyeriss"))

    by_group = {row["layer group"]: row for row in rows}
    assert set(by_group) == set(paper_data.FIG13_ALEXNET_PER_LAYER)

    # The reduced-precision convolutions gain far more than the 8-bit ones.
    assert by_group["conv 4/1-bit"]["speedup"] > 2 * by_group["conv 8/8-bit"]["speedup"]
    # The 8-bit classifier sees essentially no speedup (paper: 1.01x).
    assert by_group["fc 8/8-bit"]["speedup"] == pytest.approx(1.0, abs=0.35)
    # Per-group speedups land close to the published values.
    for group, (paper_speedup, _) in paper_data.FIG13_ALEXNET_PER_LAYER.items():
        assert by_group[group]["speedup"] == pytest.approx(paper_speedup, rel=0.45)
