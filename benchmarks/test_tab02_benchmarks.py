"""Table II — benchmark characteristics (multiply-adds and model weights)."""

from __future__ import annotations

import pytest

from repro.harness import paper_data
from repro.harness.experiments import tab02_benchmarks


def test_tab02_benchmark_characteristics(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, tab02_benchmarks.run)

    with capsys.disabled():
        print()
        print(tab02_benchmarks.format_table(rows))

    assert len(rows) == 8
    for row in rows:
        # Workload sizes track the published Table II values.
        assert row.macs_mops == pytest.approx(row.paper_macs_mops, rel=0.30)
        assert row.macs_mops > 0
        assert row.weights_mb > 0
    # The relative ordering of workload sizes matches the paper.
    ordered = sorted(rows, key=lambda row: row.macs_mops)
    assert ordered[0].benchmark in ("LeNet-5", "LSTM")
    assert ordered[-1].benchmark in ("ResNet-18", "AlexNet")
