"""Figure 10 — Fusion Unit versus temporal design: area, power, same-area throughput."""

from __future__ import annotations

import pytest

from repro.harness import paper_data
from repro.harness.experiments import fig10_fusion_unit


def test_fig10_fusion_unit_area_power(benchmark, bench_once, capsys):
    rows = bench_once(benchmark, fig10_fusion_unit.run)

    with capsys.disabled():
        print()
        print(fig10_fusion_unit.format_table(rows))
        print()
        from repro.harness.reporting import format_table

        print(
            format_table(
                fig10_fusion_unit.run_throughput_advantage(),
                title="Same-area throughput: spatial fusion vs temporal design",
            )
        )

    paper_area, paper_power = paper_data.FIG10_FUSION_VS_TEMPORAL
    totals = {(row.metric, row.component): row.reduction for row in rows}
    assert totals[("area (um^2)", "total")] == pytest.approx(paper_area, rel=0.05)
    assert totals[("power (nW)", "total")] == pytest.approx(paper_power, rel=0.05)
    # The temporal design's registers are its dominant overhead (16x in the paper).
    assert totals[("area (um^2)", "register")] == pytest.approx(16.0, rel=0.05)

    advantage = fig10_fusion_unit.run_throughput_advantage()
    assert all(row["advantage"] > 1.0 for row in advantage)
